"""Tests for repro.core.raf (Algorithms 2-4)."""

from __future__ import annotations

import pytest

from repro.core.parameters import SamplePolicy
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, estimate_pmax, run_raf, run_sampling_framework
from repro.core.vmax import compute_vmax
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.exceptions import AlgorithmError
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights

from tests.conftest import find_test_pair


@pytest.fixture
def ba_problem(medium_ba_graph, rng):
    source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
    return ActiveFriendingProblem(medium_ba_graph, source, target, alpha=0.2)


FAST_CONFIG = RAFConfig(
    sample_policy=SamplePolicy.FIXED,
    fixed_realizations=2500,
    pmax_max_samples=30_000,
    epsilon=0.05,
)


class TestRAFConfig:
    def test_defaults_are_valid(self):
        RAFConfig()

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            RAFConfig(epsilon=0.0)

    def test_invalid_pmax_epsilon(self):
        with pytest.raises(ValueError):
            RAFConfig(pmax_epsilon=1.5)

    def test_invalid_fixed_realizations(self):
        with pytest.raises(ValueError):
            RAFConfig(fixed_realizations=0)


class TestEstimatePmax:
    def test_chain_pmax(self, chain_graph):
        estimate = estimate_pmax(chain_graph, "s", "t", epsilon=0.1, confidence_n=100.0, rng=1)
        assert estimate.value == pytest.approx(0.5, abs=0.06)
        assert estimate.method == "stopping-rule"

    def test_diamond_pmax(self, diamond_graph):
        estimate = estimate_pmax(diamond_graph, "s", "t", epsilon=0.1, confidence_n=100.0, rng=2)
        assert estimate.value == pytest.approx(0.5, abs=0.06)

    def test_unreachable_target_raises(self):
        graph = apply_degree_normalized_weights(
            SocialGraph(edges=[("s", "a"), ("t", "x")])
        )
        with pytest.raises(AlgorithmError):
            estimate_pmax(graph, "s", "t", max_samples=2000, rng=3)

    def test_capped_run_falls_back_to_sample_mean(self, medium_ba_graph, rng):
        source, target = find_test_pair(medium_ba_graph, rng)
        estimate = estimate_pmax(
            medium_ba_graph, source, target, epsilon=0.01, confidence_n=1e6,
            max_samples=2000, rng=4,
        )
        assert estimate.method == "sample-mean"
        assert estimate.num_samples == 2000
        assert 0.0 < estimate.value <= 1.0

    def test_sample_count_reported(self, chain_graph):
        estimate = estimate_pmax(chain_graph, "s", "t", epsilon=0.2, confidence_n=50.0, rng=5)
        assert estimate.num_samples > 0


class TestSamplingFramework:
    def test_chain_returns_the_only_useful_invitation(self, chain_graph):
        problem = ActiveFriendingProblem(chain_graph, "s", "t", alpha=0.5)
        invitation, diagnostics = run_sampling_framework(
            problem, beta=0.4, num_realizations=2000, rng=1
        )
        assert invitation == frozenset({"b", "t"})
        assert diagnostics["num_type1"] > 0
        assert diagnostics["covered_weight"] >= diagnostics["cover_target"]

    def test_invitation_always_contains_target(self, ba_problem):
        invitation, _ = run_sampling_framework(ba_problem, beta=0.3, num_realizations=2000, rng=2)
        assert ba_problem.target in invitation

    def test_invitation_within_vmax(self, ba_problem):
        """Every invited node lies on some N_s -> t path (subset of Vmax)."""
        invitation, _ = run_sampling_framework(ba_problem, beta=0.3, num_realizations=3000, rng=3)
        vmax = compute_vmax(ba_problem.graph, ba_problem.source, ba_problem.target)
        assert invitation <= vmax

    def test_unreachable_pair_raises(self):
        graph = apply_degree_normalized_weights(SocialGraph(edges=[("s", "a"), ("t", "x")]))
        problem = ActiveFriendingProblem(graph, "s", "t")
        with pytest.raises(AlgorithmError):
            run_sampling_framework(problem, beta=0.3, num_realizations=200, rng=4)

    def test_invalid_beta(self, ba_problem):
        with pytest.raises(ValueError):
            run_sampling_framework(ba_problem, beta=0.0, num_realizations=100)
        with pytest.raises(ValueError):
            run_sampling_framework(ba_problem, beta=1.2, num_realizations=100)

    def test_larger_beta_needs_no_smaller_invitation(self, ba_problem):
        small, _ = run_sampling_framework(ba_problem, beta=0.1, num_realizations=3000, rng=5)
        large, _ = run_sampling_framework(ba_problem, beta=0.9, num_realizations=3000, rng=5)
        assert len(large) >= len(small)


class TestRunRaf:
    def test_result_fields_consistent(self, ba_problem):
        result = run_raf(ba_problem, FAST_CONFIG, rng=7)
        assert result.size == len(result.invitation)
        assert result.num_type1 <= result.num_realizations
        assert result.cover_target <= result.covered_weight
        assert result.covered_weight <= result.num_type1
        assert result.pmax_estimate > 0
        assert result.elapsed_seconds > 0
        assert result.algorithm == "RAF"
        assert 0.0 < result.coverage_fraction <= 1.0

    def test_invitation_contains_target(self, ba_problem):
        result = run_raf(ba_problem, FAST_CONFIG, rng=8)
        assert ba_problem.target in result.invitation

    def test_reproducible_given_seed(self, ba_problem):
        first = run_raf(ba_problem, FAST_CONFIG, rng=9)
        second = run_raf(ba_problem, FAST_CONFIG, rng=9)
        assert first.invitation == second.invitation
        assert first.pmax_estimate == second.pmax_estimate

    def test_acceptance_probability_meets_target_fraction(self, ba_problem):
        """The headline guarantee: f(I*) >= (alpha - eps) * pmax, checked empirically."""
        result = run_raf(ba_problem, FAST_CONFIG, rng=10)
        graph = ba_problem.graph
        achieved = estimate_acceptance_probability(
            graph, ba_problem.source, ba_problem.target, result.invitation,
            num_samples=4000, rng=11,
        ).probability
        pmax = estimate_acceptance_probability(
            graph, ba_problem.source, ba_problem.target, graph.node_list(),
            num_samples=4000, rng=12,
        ).probability
        target_fraction = (ba_problem.alpha - FAST_CONFIG.epsilon) * pmax
        # Allow Monte Carlo slack: three standard deviations of the estimate.
        assert achieved >= target_fraction - 0.03

    def test_higher_alpha_gives_no_smaller_invitation(self, medium_ba_graph, rng):
        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        low = run_raf(
            ActiveFriendingProblem(medium_ba_graph, source, target, alpha=0.1),
            FAST_CONFIG, rng=13,
        )
        high = run_raf(
            ActiveFriendingProblem(medium_ba_graph, source, target, alpha=0.9),
            FAST_CONFIG, rng=13,
        )
        assert high.size >= low.size

    def test_size_bound_reported(self, ba_problem):
        result = run_raf(ba_problem, FAST_CONFIG, rng=14)
        assert result.approx_ratio_bound == pytest.approx(2.0 * result.num_type1**0.5)

    def test_default_config_used_when_none(self, chain_graph):
        problem = ActiveFriendingProblem(chain_graph, "s", "t", alpha=0.5)
        result = run_raf(problem, config=None, rng=15)
        assert result.invitation == frozenset({"b", "t"})

    def test_as_invitation_result(self, ba_problem):
        result = run_raf(ba_problem, FAST_CONFIG, rng=16)
        generic = result.as_invitation_result()
        assert generic.invitation == result.invitation
        assert generic.algorithm == "RAF"
        assert generic.metadata["num_type1"] == result.num_type1


class TestEstimatePmaxValidation:
    """max_samples/num_samples misuse raises instead of silently degrading,
    consistently with evaluate_invitation's require_positive_int guard."""

    def test_zero_max_samples_rejected(self, chain_graph):
        with pytest.raises(ValueError):
            estimate_pmax(chain_graph, "s", "t", max_samples=0, rng=1)

    def test_non_integer_max_samples_rejected(self, chain_graph):
        with pytest.raises(TypeError):
            estimate_pmax(chain_graph, "s", "t", max_samples=100.5, rng=1)

    def test_fixed_sample_estimator_rejects_zero_samples(self, chain_graph):
        from repro.diffusion.friending_process import estimate_pmax_fixed_samples
        from repro.experiments.harness import evaluate_invitation

        with pytest.raises(ValueError):
            estimate_pmax_fixed_samples(chain_graph, "s", "t", num_samples=0, rng=1)
        with pytest.raises(ValueError):
            evaluate_invitation(chain_graph, "s", "t", ["a"], num_samples=0, rng=1)


class TestRAFConfigPool:
    def test_pool_knobs_validate(self):
        RAFConfig(pool=True, pool_budget=1000)
        with pytest.raises(ValueError):
            RAFConfig(pool_budget=0)

    def test_pooled_run_is_deterministic_and_warm_equals_cold(self, ba_problem):
        from repro.diffusion.engine import create_engine
        from repro.pool import SamplePool

        config = RAFConfig(
            sample_policy=SamplePolicy.FIXED, fixed_realizations=800,
            pmax_max_samples=30_000, epsilon=0.05, pool=True,
        )
        first = run_raf(ba_problem, config, rng=5)
        second = run_raf(ba_problem, config, rng=5)
        assert first.invitation == second.invitation
        assert first.pmax_estimate == second.pmax_estimate

        # An external pool: the second identical query draws nothing new,
        # and returns exactly what the cold query returned.
        engine = create_engine(ba_problem.compiled, "python")
        shared = SamplePool(engine, seed=123)
        no_pool_config = RAFConfig(
            sample_policy=SamplePolicy.FIXED, fixed_realizations=800,
            pmax_max_samples=30_000, epsilon=0.05,
        )
        cold = run_raf(ba_problem, no_pool_config, rng=5, pool=shared)
        drawn = shared.stats().drawn_paths
        warm = run_raf(ba_problem, no_pool_config, rng=5, pool=shared)
        assert warm.invitation == cold.invitation
        assert warm.pmax_estimate == cold.pmax_estimate
        assert shared.stats().drawn_paths == drawn
