"""Tests for repro.core.analysis (guarantee diagnostics)."""

from __future__ import annotations

import pytest

from repro.core.analysis import GuaranteeReport, evaluate_guarantees
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, SamplePolicy, run_raf

from tests.conftest import find_test_pair

FAST_CONFIG = RAFConfig(
    epsilon=0.05, sample_policy=SamplePolicy.FIXED, fixed_realizations=2500
)


class TestEvaluateGuarantees:
    @pytest.fixture
    def problem_and_result(self, medium_ba_graph, rng):
        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        problem = ActiveFriendingProblem(medium_ba_graph, source, target, alpha=0.2)
        result = run_raf(problem, FAST_CONFIG, rng=31)
        return problem, result

    def test_report_fields_consistent(self, problem_and_result):
        problem, result = problem_and_result
        report = evaluate_guarantees(problem, result, epsilon=FAST_CONFIG.epsilon,
                                     num_samples=1500, rng=1)
        assert 0.0 <= report.achieved_probability <= 1.0
        assert 0.0 <= report.pmax_simulated <= 1.0
        assert report.required_probability == pytest.approx(
            (problem.alpha - FAST_CONFIG.epsilon) * report.pmax_simulated
        )
        assert report.invitation_size == result.size
        assert report.vmax_size >= report.invitation_size
        assert report.size_bound == result.approx_ratio_bound
        assert report.monte_carlo_tolerance > 0.0

    def test_guarantee_met_on_chain(self, chain_graph):
        problem = ActiveFriendingProblem(chain_graph, "s", "t", alpha=0.5)
        result = run_raf(problem, RAFConfig(epsilon=0.1, sample_policy=SamplePolicy.FIXED,
                                            fixed_realizations=1500), rng=2)
        report = evaluate_guarantees(problem, result, epsilon=0.1, num_samples=3000, rng=3)
        assert report.probability_guarantee_met
        assert report.achieved_fraction == pytest.approx(1.0, abs=0.1)

    def test_guarantee_met_on_ba_instance(self, problem_and_result):
        problem, result = problem_and_result
        report = evaluate_guarantees(problem, result, epsilon=FAST_CONFIG.epsilon,
                                     num_samples=2500, rng=4)
        assert report.probability_guarantee_met

    def test_achieved_fraction_zero_when_pmax_zero(self):
        report = GuaranteeReport(
            achieved_probability=0.0, pmax_simulated=0.0, required_probability=0.0,
            probability_guarantee_met=True, invitation_size=1, vmax_size=1,
            size_bound=2.0, monte_carlo_tolerance=0.01,
        )
        assert report.achieved_fraction == 0.0

    def test_as_rows_shape(self, problem_and_result):
        problem, result = problem_and_result
        report = evaluate_guarantees(problem, result, epsilon=FAST_CONFIG.epsilon,
                                     num_samples=800, rng=5)
        rows = report.as_rows()
        assert len(rows) == 7
        assert all({"quantity", "value"} == set(row) for row in rows)

    def test_invalid_samples(self, problem_and_result):
        problem, result = problem_and_result
        with pytest.raises(ValueError):
            evaluate_guarantees(problem, result, epsilon=0.05, num_samples=0)
