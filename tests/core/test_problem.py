"""Tests for repro.core.problem."""

from __future__ import annotations

import pytest

from repro.core.problem import ActiveFriendingProblem
from repro.exceptions import ProblemDefinitionError
from repro.graph.generators import path_graph
from repro.graph.social_graph import SocialGraph


class TestValidation:
    def test_valid_instance(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.3)
        assert problem.alpha == 0.3
        assert problem.source == "s"
        assert problem.target == "t"

    def test_default_alpha(self, diamond_graph):
        assert ActiveFriendingProblem(diamond_graph, "s", "t").alpha == 0.1

    def test_unknown_source(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            ActiveFriendingProblem(diamond_graph, "ghost", "t")

    def test_unknown_target(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            ActiveFriendingProblem(diamond_graph, "s", "ghost")

    def test_source_equals_target(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            ActiveFriendingProblem(diamond_graph, "s", "s")

    def test_already_friends_rejected(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            ActiveFriendingProblem(diamond_graph, "s", "a")

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha(self, diamond_graph, alpha):
        with pytest.raises(ProblemDefinitionError):
            ActiveFriendingProblem(diamond_graph, "s", "t", alpha=alpha)

    def test_unnormalized_graph_rejected(self):
        graph = SocialGraph(edges=[(0, 1, 0.9, 0.9), (2, 1, 0.9, 0.9), (2, 3, 0.5, 0.5)])
        with pytest.raises(ProblemDefinitionError):
            ActiveFriendingProblem(graph, 0, 3)

    def test_unweighted_graph_is_accepted(self):
        # Zero weights are degenerate but not invalid (the acceptance
        # probability is simply zero); the constructor only enforces the
        # normalization constraint.
        problem = ActiveFriendingProblem(path_graph(4), 0, 3)
        assert problem.num_nodes == 4


class TestDerivedProperties:
    def test_source_friends(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t")
        assert problem.source_friends == frozenset({"a", "b"})

    def test_num_nodes(self, diamond_graph):
        assert ActiveFriendingProblem(diamond_graph, "s", "t").num_nodes == 6

    def test_candidate_nodes_exclude_source_and_friends(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t")
        candidates = problem.candidate_nodes()
        assert "s" not in candidates
        assert "a" not in candidates and "b" not in candidates
        assert "t" in candidates
        assert candidates == frozenset({"x1", "x2", "t"})

    def test_with_alpha(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.1)
        modified = problem.with_alpha(0.4)
        assert modified.alpha == 0.4
        assert problem.alpha == 0.1
        assert modified.graph is problem.graph
