"""Tests for repro.core.maximization (budgeted / maximum active friending)."""

from __future__ import annotations

import pytest

from repro.core.maximization import maximize_acceptance_probability
from repro.core.vmax import compute_vmax
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.exceptions import AlgorithmError, ProblemDefinitionError
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights

from tests.conftest import find_test_pair


class TestValidation:
    def test_same_user_rejected(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            maximize_acceptance_probability(diamond_graph, "s", "s", budget=2)

    def test_already_friends_rejected(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            maximize_acceptance_probability(diamond_graph, "s", "a", budget=2)

    def test_unknown_user_rejected(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            maximize_acceptance_probability(diamond_graph, "s", "ghost", budget=2)

    def test_unnormalized_graph_rejected(self):
        graph = SocialGraph(edges=[(0, 1, 0.9, 0.9), (2, 1, 0.9, 0.9), (2, 3, 0.1, 0.1)])
        with pytest.raises(ProblemDefinitionError):
            maximize_acceptance_probability(graph, 0, 3, budget=1)

    def test_invalid_budget(self, diamond_graph):
        with pytest.raises(ValueError):
            maximize_acceptance_probability(diamond_graph, "s", "t", budget=0)

    def test_unreachable_pair(self):
        graph = apply_degree_normalized_weights(SocialGraph(edges=[("s", "a"), ("t", "x")]))
        with pytest.raises(AlgorithmError):
            maximize_acceptance_probability(graph, "s", "t", budget=2, num_realizations=300)


class TestSmallTopologies:
    def test_chain_budget_two_finds_the_route(self, chain_graph):
        result = maximize_acceptance_probability(
            chain_graph, "s", "t", budget=2, num_realizations=1500, rng=1
        )
        assert result.invitation == frozenset({"b", "t"})
        assert result.estimated_fraction_of_pmax == pytest.approx(1.0)

    def test_diamond_budget_two_picks_one_route(self, diamond_graph):
        result = maximize_acceptance_probability(
            diamond_graph, "s", "t", budget=2, num_realizations=2500, rng=2
        )
        assert result.size == 2
        assert "t" in result.invitation
        # One of the two routes is covered: roughly half of the type-1 mass.
        assert result.estimated_fraction_of_pmax == pytest.approx(0.5, abs=0.1)

    def test_diamond_budget_three_achieves_pmax(self, diamond_graph):
        result = maximize_acceptance_probability(
            diamond_graph, "s", "t", budget=3, num_realizations=2500, rng=3
        )
        assert result.invitation == frozenset({"x1", "x2", "t"})
        assert result.estimated_fraction_of_pmax == pytest.approx(1.0)


class TestLargerGraphs:
    def test_budget_respected_and_quality_monotone(self, medium_ba_graph, rng):
        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        qualities = []
        for budget in (2, 8, 32):
            result = maximize_acceptance_probability(
                medium_ba_graph, source, target, budget=budget,
                num_realizations=3000, rng=4,
            )
            assert result.size <= budget
            assert target in result.invitation or result.covered_weight == 0
            qualities.append(result.estimated_fraction_of_pmax)
        assert qualities[0] <= qualities[1] + 0.02
        assert qualities[1] <= qualities[2] + 0.02

    def test_invitation_within_vmax(self, medium_ba_graph, rng):
        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        result = maximize_acceptance_probability(
            medium_ba_graph, source, target, budget=15, num_realizations=3000, rng=5
        )
        vmax = compute_vmax(medium_ba_graph, source, target)
        assert result.invitation <= vmax

    def test_estimated_fraction_tracks_simulation(self, medium_ba_graph, rng):
        """covered/|B1| is an estimate of f(I)/pmax; check it against simulation."""
        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        result = maximize_acceptance_probability(
            medium_ba_graph, source, target, budget=25, num_realizations=5000, rng=6
        )
        f_invitation = estimate_acceptance_probability(
            medium_ba_graph, source, target, result.invitation, num_samples=4000, rng=7
        ).probability
        pmax = estimate_acceptance_probability(
            medium_ba_graph, source, target, medium_ba_graph.node_list(), num_samples=4000, rng=8
        ).probability
        assert pmax > 0
        assert f_invitation / pmax == pytest.approx(result.estimated_fraction_of_pmax, abs=0.15)

    def test_as_invitation_result(self, medium_ba_graph, rng):
        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        result = maximize_acceptance_probability(
            medium_ba_graph, source, target, budget=5, num_realizations=1500, rng=9
        )
        generic = result.as_invitation_result()
        assert generic.algorithm == "MaxRAF"
        assert generic.metadata["budget"] == 5
