"""Tests for the zero-copy shared-memory chunk transport (repro.parallel.shm).

Three load-bearing properties:

* **Transparency** -- the transport never changes results: batches off the
  shm wire are byte-for-byte the pickled ones, for every engine and worker
  count, and the whole layer degrades to pickling when shared memory is
  unavailable (monkeypatched away here) or a segment cannot be created.
* **Lifecycle** -- every published segment is unlinked exactly once: on
  adoption-batch garbage collection in the common case, by the orphan
  sweep (``ParallelEngine.close()`` / ``atexit``) when a worker died
  between publish and delivery.  Nothing may survive in ``/dev/shm``.
* **Fork inheritance** -- workers receive the compiled CSR snapshot by
  forking, never by pickle: task payloads and result batches must stay
  free of snapshot array buffers (poisoning ``CompiledGraph`` pickling
  must not disturb a parallel run).
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.diffusion.engine import available_engines, create_engine, numpy_available
from repro.exceptions import EngineError
from repro.graph.compiled import CompiledGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel import ParallelEngine, fork_available, shm_available
from repro.parallel import shm as shm_transport

needs_shm = pytest.mark.skipif(not shm_available(), reason="shared memory or numpy unavailable")
needs_fork = pytest.mark.skipif(not fork_available(), reason="platform lacks fork")


@pytest.fixture(scope="module")
def graph():
    return apply_degree_normalized_weights(barabasi_albert_graph(300, 4, rng=17))


@pytest.fixture(scope="module")
def pair(graph):
    source = 0
    target = next(
        node
        for node in reversed(graph.node_list())
        if node != source and not graph.has_edge(source, node)
    )
    return source, target


def _segment_on_disk(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


class TestResolveTransport:
    def test_explicit_names_pass_through(self):
        assert shm_transport.resolve_transport("pickle") == "pickle"
        assert shm_transport.resolve_transport("PICKLE") == "pickle"
        assert shm_transport.resolve_transport("shm") == "shm"

    def test_auto_prefers_shm_for_columnar_engines(self):
        expected = "shm" if shm_available() else "pickle"
        assert shm_transport.resolve_transport("auto", native_batches=True) == expected

    def test_auto_falls_back_for_object_engines(self):
        # An object-path engine has no columns to place in a segment.
        assert shm_transport.resolve_transport("auto", native_batches=False) == "pickle"

    def test_unknown_transport_rejected(self):
        with pytest.raises(EngineError):
            shm_transport.resolve_transport("carrier-pigeon")

    def test_auto_without_shared_memory_is_pickle(self, monkeypatch):
        monkeypatch.setattr(shm_transport, "_shared_memory", None)
        assert not shm_transport.shm_available()
        assert shm_transport.resolve_transport("auto", native_batches=True) == "pickle"

    def test_engine_exposes_resolved_transport(self, graph):
        numpy_engine = "numpy" if numpy_available() else "python"
        engine = ParallelEngine(create_engine(graph, numpy_engine), workers=2)
        expected = "shm" if (shm_available() and numpy_available()) else "pickle"
        assert engine.transport == expected
        assert ParallelEngine(create_engine(graph, "python"), workers=2).transport == "pickle"


@needs_shm
class TestPublishAdopt:
    def test_round_trip_is_byte_identical(self, graph, pair):
        import numpy as np

        source, target = pair
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, graph.neighbor_set(source), 257, rng=5)
        ref = shm_transport.publish_batch(batch)
        assert ref is not None
        assert ref.num_paths == len(batch)
        adopted = shm_transport.adopt(ref)
        assert adopted.graph is None  # detached, exactly like a pickled batch
        assert np.array_equal(np.asarray(adopted.offsets), np.asarray(batch.offsets))
        assert np.array_equal(np.asarray(adopted.node_indices), np.asarray(batch.node_indices))
        assert np.array_equal(np.asarray(adopted.is_type1), np.asarray(batch.is_type1))
        assert np.array_equal(
            np.asarray(adopted.anchor_indices), np.asarray(batch.anchor_indices)
        )
        assert adopted.attach(engine.compiled).to_paths() == batch.to_paths()

    def test_segment_unlinked_when_batch_collected(self, graph, pair):
        source, target = pair
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, graph.neighbor_set(source), 64, rng=7)
        ref = shm_transport.publish_batch(batch)
        adopted = shm_transport.adopt(ref)
        assert ref.name in shm_transport.live_segments()
        assert _segment_on_disk(ref.name)
        del adopted
        gc.collect()
        assert ref.name not in shm_transport.live_segments()
        assert not _segment_on_disk(ref.name)

    def test_empty_batch_round_trips(self, graph, pair):
        source, target = pair
        engine = create_engine(graph, "numpy")
        empty = engine.sample_path_batch(target, graph.neighbor_set(source), 0, rng=1)
        ref = shm_transport.publish_batch(empty)
        assert ref is not None and ref.num_paths == 0
        adopted = shm_transport.adopt(ref)
        assert len(adopted) == 0
        del adopted
        gc.collect()
        assert not _segment_on_disk(ref.name)

    def test_non_numpy_columns_fall_back_to_pickle(self):
        # Columns that are not numpy arrays have no buffer to copy in.
        from array import array

        from repro.diffusion.path_batch import PathBatch

        batch = PathBatch(
            array("q", [0, 1]), array("q", [3]), array("b", [1]), array("q", [0]), None
        )
        assert shm_transport.publish_batch(batch) is None

    def test_segment_creation_failure_falls_back_to_pickle(self, graph, pair, monkeypatch):
        # /dev/shm exhaustion (or any create failure) degrades per-chunk.
        source, target = pair
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, graph.neighbor_set(source), 16, rng=3)

        class _ExhaustedShm:
            @staticmethod
            def SharedMemory(*args, **kwargs):
                raise OSError("no space left on device")

        monkeypatch.setattr(shm_transport, "_shared_memory", _ExhaustedShm)
        assert shm_transport.publish_batch(batch) is None

    def test_publish_without_shared_memory_returns_none(self, graph, pair, monkeypatch):
        source, target = pair
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, graph.neighbor_set(source), 16, rng=3)
        monkeypatch.setattr(shm_transport, "_shared_memory", None)
        assert shm_transport.publish_batch(batch) is None


@needs_shm
class TestOrphanSweep:
    def test_sweep_unlinks_stranded_segments(self):
        """A segment published by a worker that died before delivery has no
        adopter and no finalizer; the sweep is what reclaims it."""
        segment = shm_transport._shared_memory.SharedMemory(
            name=shm_transport.segment_name(), create=True, size=64
        )
        shm_transport._unregister_from_tracker(segment)
        segment.close()
        assert _segment_on_disk(segment.name)
        swept = shm_transport.sweep_orphans()
        assert segment.name in swept
        assert not _segment_on_disk(segment.name)

    def test_sweep_spares_adopted_segments(self, graph, pair):
        source, target = pair
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, graph.neighbor_set(source), 32, rng=9)
        ref = shm_transport.publish_batch(batch)
        adopted = shm_transport.adopt(ref)
        assert ref.name not in shm_transport.sweep_orphans()
        assert _segment_on_disk(ref.name)
        del adopted
        gc.collect()
        assert not _segment_on_disk(ref.name)

    def test_sweep_ignores_foreign_prefixes(self):
        # Another live process's segments must never be touched: the sweep
        # is scoped to this process's pid-embedding prefix.
        foreign = shm_transport._shared_memory.SharedMemory(
            name=f"repro-pb-{os.getpid() + 1}-deadbeef", create=True, size=64
        )
        try:
            assert foreign.name not in shm_transport.sweep_orphans()
            assert _segment_on_disk(foreign.name)
        finally:
            foreign.close()
            foreign.unlink()

    @needs_fork
    def test_engine_close_sweeps_after_simulated_worker_crash(self, graph, pair):
        source, target = pair
        engine = ParallelEngine(
            create_engine(graph, "numpy"), workers=2, chunk_size=32, transport="shm"
        )
        try:
            engine.sample_path_batch(target, graph.neighbor_set(source), 128, rng=5)
            # Simulate the leftover of a worker that died between publish
            # and delivery: on disk, never adopted.
            stranded = shm_transport._shared_memory.SharedMemory(
                name=shm_transport.segment_name(), create=True, size=64
            )
            shm_transport._unregister_from_tracker(stranded)
            stranded.close()
            name = stranded.name
        finally:
            engine.close()
        assert not _segment_on_disk(name)


@needs_fork
class TestTransportTransparency:
    @pytest.mark.parametrize(
        "backend", [name for name in available_engines() if name != "python"]
    )
    def test_batches_identical_across_transports(self, graph, pair, backend):
        source, target = pair
        stop = graph.neighbor_set(source)
        base = create_engine(graph, backend)
        serial = ParallelEngine(base, workers=1, chunk_size=64).sample_path_batch(
            target, stop, 500, rng=23
        )
        for transport in ("pickle", "shm"):
            fanned = ParallelEngine(base, workers=4, chunk_size=64, transport=transport)
            try:
                batch = fanned.sample_path_batch(target, stop, 500, rng=23)
            finally:
                fanned.close()
            assert batch.to_paths() == serial.to_paths()
        assert not [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(shm_transport.default_prefix())
        ]

    @pytest.mark.skipif(not numpy_available(), reason="numpy is not installed")
    def test_seeded_batches_identical_across_transports(self, graph, pair):
        source, target = pair
        stop = graph.neighbor_set(source)
        base = create_engine(graph, "numpy")
        sized_seeds = [(64, 11), (64, 12), (32, 13)]
        expected = [
            chunk.to_paths() for chunk in base_seeded(base, target, stop, sized_seeds)
        ]
        for transport in ("pickle", "shm"):
            fanned = ParallelEngine(base, workers=4, chunk_size=64, transport=transport)
            try:
                chunks = fanned.sample_seeded_batches(target, stop, sized_seeds)
            finally:
                fanned.close()
            assert [chunk.to_paths() for chunk in chunks] == expected

    @pytest.mark.skipif(not numpy_available(), reason="numpy is not installed")
    def test_worker_side_fallback_when_segments_unavailable(self, graph, pair, monkeypatch):
        """Explicit transport="shm" with no shared memory degrades per-chunk
        to pickling -- same results, no error.  The monkeypatch is applied
        before the pool forks, so the workers inherit the broken module."""
        source, target = pair
        stop = graph.neighbor_set(source)
        base = create_engine(graph, "numpy")
        expected = ParallelEngine(base, workers=1, chunk_size=64).sample_path_batch(
            target, stop, 300, rng=11
        )
        monkeypatch.setattr(shm_transport, "_shared_memory", None)
        fanned = ParallelEngine(base, workers=2, chunk_size=64, transport="shm")
        try:
            batch = fanned.sample_path_batch(target, stop, 300, rng=11)
        finally:
            fanned.close()
        assert batch.to_paths() == expected.to_paths()


def base_seeded(engine, target, stop, sized_seeds):
    import random

    return [
        engine.sample_path_batch(target, stop, size, rng=random.Random(seed))
        for size, seed in sized_seeds
    ]


@needs_fork
class TestForkInheritsSnapshot:
    @pytest.mark.parametrize("transport", ["pickle", "auto"])
    def test_snapshot_never_pickled(self, graph, pair, monkeypatch, transport):
        """Poison CompiledGraph pickling: the fork path must not notice.

        Workers inherit the snapshot through the fork; task payloads are
        ``(target, stop_set, count, seed)`` tuples and results are packed
        columns or descriptors.  If any of them dragged the snapshot's
        array buffers along, the poisoned reduce would blow up the run.
        """

        def _refuse(self, *args, **kwargs):
            raise AssertionError("compiled snapshot must never be pickled")

        monkeypatch.setattr(CompiledGraph, "__reduce_ex__", _refuse, raising=False)
        source, target = pair
        stop = graph.neighbor_set(source)
        backend = "numpy" if numpy_available() else "python"
        base = create_engine(graph, backend)
        fanned = ParallelEngine(base, workers=2, chunk_size=64, transport=transport)
        try:
            batch = fanned.sample_path_batch(target, stop, 256, rng=29)
            paths = fanned.sample_paths(target, stop, 256, rng=31)
        finally:
            fanned.close()
        assert len(batch) == 256
        assert len(paths) == 256
