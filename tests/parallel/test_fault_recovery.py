"""Crash-recovery tests for the parallel sampling engine.

The contract under test (DESIGN.md §11): a worker killed mid-chunk is
*detected* (no hang), the lost chunks are *re-dispatched on a fresh pool*
with their original derived seeds, and the recovered results are
byte-identical to a fault-free run -- because each chunk is a pure function
of its seed, a retry cannot produce different samples.  When the retry
budget runs out the engine either raises a typed
:class:`~repro.exceptions.WorkerCrashError` or -- with
``on_worker_failure="serial"`` -- permanently degrades to in-process
sampling, still byte-identically.  Either way every crashed pool's
shared-memory segments are swept.
"""

from __future__ import annotations

import asyncio
import random
from pathlib import Path

import pytest

from repro.diffusion.engine import create_engine
from repro.exceptions import EngineError, WorkerCrashError
from repro.faults import SITE_WORKER_KILL, FaultPlan
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel import ParallelEngine, fork_available, shm as shm_transport

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="crash recovery requires the fork start method"
)

#: Small enough to keep kill-and-respawn rounds fast, large enough that a
#: request fans out over several chunks (so *specific* chunks can be lost).
CHUNK = 50
SAMPLES = 8 * CHUNK


@pytest.fixture(scope="module")
def graph():
    return apply_degree_normalized_weights(barabasi_albert_graph(300, 4, rng=17))


@pytest.fixture(scope="module")
def pair(graph):
    source = 0
    target = next(
        node
        for node in reversed(graph.node_list())
        if node != source and not graph.has_edge(source, node)
    )
    return source, target


def _draw(engine, graph, pair):
    _, target = pair
    stop = graph.neighbor_set(pair[0])
    return engine.sample_paths(target, stop, SAMPLES, rng=random.Random(99))


def _own_segments():
    """Names under this process's shm prefix still present in /dev/shm."""
    prefix = shm_transport.default_prefix()
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-/dev/shm platforms
        return []
    return sorted(p.name for p in shm_dir.glob(f"{prefix}*"))


class TestKillRecovery:
    @pytest.mark.parametrize("engine_name", ["python", "numpy"])
    def test_killed_worker_is_retried_byte_identically(self, graph, pair, engine_name):
        with ParallelEngine(create_engine(graph, engine_name), 2, CHUNK) as clean:
            expected = _draw(clean, graph, pair)
        plan = FaultPlan(kill_at={0})
        with ParallelEngine(
            create_engine(graph, engine_name), 2, CHUNK, fault_plan=plan
        ) as faulted:
            recovered = _draw(faulted, graph, pair)
            assert faulted.worker_crashes == 1
            assert faulted.degraded is False
        assert plan.injected(SITE_WORKER_KILL) == 1
        assert recovered == expected
        assert _own_segments() == []

    def test_recovered_engine_keeps_serving(self, graph, pair):
        """After one recovery the respawned pool serves later requests too."""
        plan = FaultPlan(kill_at={1})
        with ParallelEngine(
            create_engine(graph, "python"), 2, CHUNK, fault_plan=plan
        ) as engine:
            first = _draw(engine, graph, pair)
            assert engine.worker_crashes == 1
            second = _draw(engine, graph, pair)
        assert first == second
        assert _own_segments() == []

    def test_retry_budget_exhaustion_raises_typed_error(self, graph, pair):
        plan = FaultPlan(kill_rate=1.0)
        with ParallelEngine(
            create_engine(graph, "python"), 2, CHUNK,
            max_chunk_retries=1, fault_plan=plan,
        ) as engine:
            with pytest.raises(WorkerCrashError) as excinfo:
                _draw(engine, graph, pair)
        assert isinstance(excinfo.value, EngineError)
        assert excinfo.value.chunks  # names the chunks that were lost
        assert engine.worker_crashes >= 2
        assert _own_segments() == []

    def test_raise_mode_fails_on_first_crash(self, graph, pair):
        plan = FaultPlan(kill_at={0})
        with ParallelEngine(
            create_engine(graph, "python"), 2, CHUNK,
            on_worker_failure="raise", fault_plan=plan,
        ) as engine:
            with pytest.raises(WorkerCrashError):
                _draw(engine, graph, pair)
            assert engine.worker_crashes == 1
        assert _own_segments() == []


class TestSerialDegrade:
    def test_exhausted_budget_degrades_byte_identically(self, graph, pair):
        with ParallelEngine(create_engine(graph, "python"), 2, CHUNK) as clean:
            expected = _draw(clean, graph, pair)
        plan = FaultPlan(kill_rate=1.0)
        with ParallelEngine(
            create_engine(graph, "python"), 2, CHUNK,
            max_chunk_retries=1, on_worker_failure="serial", fault_plan=plan,
        ) as engine:
            degraded_draw = _draw(engine, graph, pair)
            assert engine.degraded is True
            # Degradation is permanent: later requests skip the pool (no
            # fresh fork) and still match exactly.
            again = _draw(engine, graph, pair)
            assert engine._pool is None
        assert degraded_draw == expected
        assert again == expected
        assert _own_segments() == []

    def test_degraded_is_false_until_budget_runs_out(self, graph, pair):
        plan = FaultPlan(kill_at={0})
        with ParallelEngine(
            create_engine(graph, "python"), 2, CHUNK,
            on_worker_failure="serial", fault_plan=plan,
        ) as engine:
            _draw(engine, graph, pair)  # one kill, recovered within budget
            assert engine.degraded is False


class TestCloseSafety:
    def test_close_is_idempotent_after_crash(self, graph, pair):
        plan = FaultPlan(kill_rate=1.0)
        engine = ParallelEngine(
            create_engine(graph, "python"), 2, CHUNK,
            max_chunk_retries=0, fault_plan=plan,
        )
        with pytest.raises(WorkerCrashError):
            _draw(engine, graph, pair)
        engine.close()
        engine.close()  # double close after a crash must be a quiet no-op
        assert engine._pool is None
        assert _own_segments() == []

    def test_aclose_matches_close(self, graph, pair):
        engine = ParallelEngine(create_engine(graph, "python"), 2, CHUNK)
        _draw(engine, graph, pair)
        asyncio.run(engine.aclose())
        asyncio.run(engine.aclose())
        engine.close()
        assert engine._pool is None

    def test_closed_engine_reforks_on_next_request(self, graph, pair):
        with ParallelEngine(create_engine(graph, "python"), 2, CHUNK) as engine:
            before = _draw(engine, graph, pair)
            engine.close()
            after = _draw(engine, graph, pair)
        assert before == after


class TestNonFatalFaults:
    def test_slow_and_shm_faults_never_change_results(self, graph, pair):
        with ParallelEngine(create_engine(graph, "numpy"), 2, CHUNK) as clean:
            expected = _draw(clean, graph, pair)
        plan = FaultPlan(
            7, slow_rate=0.5, shm_fail_rate=0.5, slow_seconds=0.001
        )
        with ParallelEngine(
            create_engine(graph, "numpy"), 2, CHUNK, fault_plan=plan
        ) as faulted:
            observed = _draw(faulted, graph, pair)
            assert faulted.worker_crashes == 0
        assert observed == expected
        assert plan.total_injected > 0
        assert _own_segments() == []

    def test_inject_faults_can_be_cleared(self, graph, pair):
        plan = FaultPlan(kill_at={0})
        with ParallelEngine(create_engine(graph, "python"), 2, CHUNK) as engine:
            engine.inject_faults(plan)
            _draw(engine, graph, pair)
            assert engine.worker_crashes == 1
            engine.inject_faults(None)
            _draw(engine, graph, pair)
            assert engine.worker_crashes == 1  # no further kills


class TestFaultPlanDeterminism:
    def test_same_seed_fires_identically(self):
        first = FaultPlan(11, kill_rate=0.4, slow_rate=0.2)
        second = FaultPlan(11, kill_rate=0.4, slow_rate=0.2)
        draws = [(first.fires(SITE_WORKER_KILL), second.fires(SITE_WORKER_KILL))
                 for _ in range(64)]
        assert all(a == b for a, b in draws)
        assert any(a for a, _ in draws) and not all(a for a, _ in draws)

    def test_explicit_indices_fire_exactly_once(self):
        plan = FaultPlan(kill_at={2})
        fired = [plan.fires(SITE_WORKER_KILL) for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_max_faults_caps_total_injection(self):
        plan = FaultPlan(3, kill_rate=1.0, max_faults=2)
        fired = [plan.fires(SITE_WORKER_KILL) for _ in range(8)]
        assert sum(fired) == 2
        assert plan.total_injected == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(kill_rate=1.5)
        with pytest.raises(TypeError):
            FaultPlan(seed="zero")
        with pytest.raises(ValueError):
            FaultPlan(slow_seconds=-1)
        with pytest.raises(ValueError):
            FaultPlan().fires("unknown-site")


class TestOrphanSweep:
    def test_crash_recovery_unlinks_stranded_segments(self, graph, pair):
        """A segment published by a worker that then dies unadopted must be
        unlinked during recovery, not leaked until interpreter exit."""
        stranded = shm_transport.segment_name()
        if not shm_transport.shm_available():  # pragma: no cover
            pytest.skip("POSIX shared memory unavailable")
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(stranded, create=True, size=64)
        segment.close()
        assert stranded in _own_segments()
        plan = FaultPlan(kill_at={0})
        with ParallelEngine(
            create_engine(graph, "numpy"), 2, CHUNK, fault_plan=plan
        ) as engine:
            _draw(engine, graph, pair)
            assert engine.worker_crashes == 1
        assert stranded not in _own_segments()
        assert _own_segments() == []
