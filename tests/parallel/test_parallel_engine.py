"""Tests for the deterministic multi-process sampling fan-out.

The load-bearing property: for a fixed seed, every result produced through
a :class:`ParallelEngine` is *identical for every worker count* -- same
paths, same pmax estimate (value and consumed sample count), same selected
invitation set.  The chunk layout and the per-chunk seed derivation depend
only on the request, never on the degree of parallelism or on scheduling.
"""

from __future__ import annotations

import random

import pytest

from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, estimate_pmax, run_raf, run_sampling_framework
from repro.diffusion.engine import available_engines, create_engine
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.exceptions import EngineError
from repro.experiments.pair_selection import screen_pmax
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel import (
    ParallelEngine,
    fork_available,
    maybe_parallel,
    resolve_worker_count,
)

ENGINES = available_engines()


@pytest.fixture(scope="module")
def graph():
    return apply_degree_normalized_weights(barabasi_albert_graph(300, 4, rng=17))


@pytest.fixture(scope="module")
def pair(graph):
    source = 0
    target = next(
        node
        for node in reversed(graph.node_list())
        if node != source and not graph.has_edge(source, node)
    )
    return source, target


class TestResolveWorkerCount:
    def test_none_passes_through(self):
        assert resolve_worker_count(None) is None

    def test_auto_resolves_to_at_least_one(self):
        assert resolve_worker_count("auto") >= 1
        assert resolve_worker_count("AUTO") >= 1

    def test_positive_integers_accepted(self):
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(8) == 8

    def test_invalid_values_rejected(self):
        with pytest.raises(EngineError):
            resolve_worker_count("three")
        with pytest.raises(ValueError):
            resolve_worker_count(0)
        with pytest.raises(ValueError):
            resolve_worker_count(-2)
        with pytest.raises(TypeError):
            resolve_worker_count(2.5)


class TestMaybeParallel:
    def test_none_returns_engine_unchanged(self, graph):
        base = create_engine(graph, "python")
        assert maybe_parallel(base, None) is base

    def test_count_wraps(self, graph):
        wrapped = maybe_parallel(create_engine(graph, "python"), 2)
        assert isinstance(wrapped, ParallelEngine)
        assert wrapped.workers == 2

    def test_already_parallel_passes_through(self, graph):
        wrapped = maybe_parallel(create_engine(graph, "python"), 2)
        assert maybe_parallel(wrapped, 4) is wrapped

    def test_double_wrap_rejected(self, graph):
        wrapped = maybe_parallel(create_engine(graph, "python"), 2)
        with pytest.raises(EngineError):
            ParallelEngine(wrapped, workers=2)


class TestParallelEngineProtocol:
    def test_satisfies_engine_interface(self, graph, pair):
        engine = ParallelEngine(create_engine(graph, "python"), workers=2)
        source, target = pair
        assert engine.compiled is create_engine(graph, "python").compiled
        path = engine.sample_path(target, graph.neighbor_set(source), rng=5)
        assert target in path.nodes

    def test_zero_count_returns_empty(self, graph, pair):
        engine = ParallelEngine(create_engine(graph, "python"), workers=2)
        source, target = pair
        assert engine.sample_paths(target, graph.neighbor_set(source), 0, rng=5) == []

    def test_count_is_respected(self, graph, pair):
        engine = ParallelEngine(create_engine(graph, "python"), workers=3, chunk_size=16)
        source, target = pair
        assert len(engine.sample_paths(target, graph.neighbor_set(source), 100, rng=5)) == 100

    def test_close_is_idempotent_and_engine_survives(self, graph, pair):
        source, target = pair
        with ParallelEngine(create_engine(graph, "python"), workers=2, chunk_size=8) as engine:
            first = engine.sample_paths(target, graph.neighbor_set(source), 32, rng=3)
        engine.close()
        again = engine.sample_paths(target, graph.neighbor_set(source), 32, rng=3)
        assert first == again


@pytest.mark.parametrize("backend", ENGINES)
class TestDeterminismAcrossWorkerCounts:
    """Same seed => identical outputs for workers=1 and workers=4."""

    def test_sample_paths_identical(self, graph, pair, backend):
        source, target = pair
        stop = graph.neighbor_set(source)
        base = create_engine(graph, backend)
        serial = ParallelEngine(base, workers=1, chunk_size=64)
        fanned = ParallelEngine(base, workers=4, chunk_size=64)
        assert serial.sample_paths(target, stop, 500, rng=23) == fanned.sample_paths(
            target, stop, 500, rng=23
        )

    def test_sequential_calls_consume_identical_streams(self, graph, pair, backend):
        source, target = pair
        stop = graph.neighbor_set(source)
        base = create_engine(graph, backend)
        serial, fanned = (ParallelEngine(base, workers=n, chunk_size=32) for n in (1, 4))
        rng_a, rng_b = random.Random(9), random.Random(9)
        a = [serial.sample_paths(target, stop, 150, rng=rng_a) for _ in range(3)]
        b = [fanned.sample_paths(target, stop, 150, rng=rng_b) for _ in range(3)]
        assert a == b

    def test_pmax_estimate_identical(self, graph, pair, backend):
        source, target = pair
        estimates = [
            estimate_pmax(
                graph,
                source,
                target,
                epsilon=0.4,
                confidence_n=100.0,
                max_samples=20_000,
                rng=31,
                engine=backend,
                workers=workers,
            )
            for workers in (1, 4)
        ]
        assert estimates[0] == estimates[1]

    def test_invitation_set_identical(self, graph, pair, backend):
        source, target = pair
        problem = ActiveFriendingProblem(graph, source, target, alpha=0.3)
        outputs = [
            run_sampling_framework(
                problem, beta=0.4, num_realizations=1200, rng=13, engine=backend, workers=workers
            )
            for workers in (1, 4)
        ]
        assert outputs[0] == outputs[1]

    def test_run_raf_identical(self, graph, pair, backend):
        source, target = pair
        problem = ActiveFriendingProblem(graph, source, target, alpha=0.3)
        results = [
            run_raf(
                problem,
                RAFConfig(
                    epsilon=0.05,
                    confidence_n=100.0,
                    fixed_realizations=800,
                    sample_policy="fixed",
                    engine=backend,
                    workers=workers,
                ),
                rng=29,
            )
            for workers in (1, 4)
        ]
        assert results[0].invitation == results[1].invitation
        assert results[0].pmax_estimate == results[1].pmax_estimate
        assert results[0].pmax_samples == results[1].pmax_samples

    def test_screen_pmax_identical(self, graph, pair, backend):
        source, target = pair
        values = [
            screen_pmax(graph, source, target, num_samples=600, rng=7, engine=backend, workers=n)
            for n in (1, 4)
        ]
        assert values[0] == values[1]

    def test_acceptance_estimate_identical(self, graph, pair, backend):
        source, target = pair
        invitation = set(graph.neighbor_set(target)) | {target}
        estimates = [
            estimate_acceptance_probability(
                graph,
                source,
                target,
                invitation,
                num_samples=900,
                rng=3,
                engine=backend,
                workers=workers,
            )
            for workers in (1, 4)
        ]
        assert estimates[0] == estimates[1]


class TestFallbacks:
    def test_serial_fallback_matches_pool(self, graph, pair, monkeypatch):
        """With fork reported unavailable the chunked results are unchanged."""
        source, target = pair
        stop = graph.neighbor_set(source)
        base = create_engine(graph, "python")
        expected = ParallelEngine(base, workers=4, chunk_size=32).sample_paths(
            target, stop, 300, rng=11
        )
        monkeypatch.setattr("repro.parallel.engine.fork_available", lambda: False)
        fallback = ParallelEngine(base, workers=4, chunk_size=32)
        assert fallback.sample_paths(target, stop, 300, rng=11) == expected
        assert fallback._pool is None  # nothing was forked

    def test_fork_available_reports_platform(self):
        # On the Linux CI/dev platforms this is simply true; the call must
        # never raise anywhere.
        assert isinstance(fork_available(), bool)


class TestStaleSnapshotPoolRefork:
    def test_pool_forked_on_dead_snapshot_is_reforked(self, pair):
        """A worker pool forked before a graph mutation must not keep sampling
        the dead CSR: the next dispatch re-snapshots the base engine and
        re-forks the pool on the current snapshot."""
        if not fork_available():
            pytest.skip("platform lacks the fork start method")
        local = apply_degree_normalized_weights(barabasi_albert_graph(120, 3, rng=23))
        engine = ParallelEngine(create_engine(local, "python"), workers=2, chunk_size=32)
        try:
            stop = local.neighbor_set(0)
            engine.sample_paths(60, stop, 128, rng=1)  # forks the pool
            local.add_edge(0, 60, weight_uv=0.2, weight_vu=0.2)
            stop = local.neighbor_set(0)
            parallel = engine.sample_paths(61, stop, 128, rng=2)
            serial = ParallelEngine(
                create_engine(local, "python"), workers=1, chunk_size=32
            ).sample_paths(61, stop, 128, rng=2)
            assert parallel == serial
        finally:
            engine.close()
