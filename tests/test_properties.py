"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.parameters import ParameterCoupling, solve_parameters
from repro.diffusion.realization import sample_realization, trace_target_path
from repro.diffusion.reverse_sampling import sample_target_path
from repro.estimation.bounds import chernoff_bound, chernoff_sample_size
from repro.estimation.stopping_rule import stopping_rule_threshold
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import connected_components, nodes_on_simple_paths
from repro.graph.weights import apply_degree_normalized_weights
from repro.setcover.hypergraph import SetSystem
from repro.setcover.mpu import greedy_min_union, smallest_sets_union
from repro.types import Interval

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda edge: edge[0] != edge[1]),
    min_size=1,
    max_size=40,
)

set_families = st.lists(
    st.sets(st.integers(0, 12), min_size=1, max_size=5),
    min_size=1,
    max_size=12,
)

DEFAULT_SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _graph_from_edges(edges) -> SocialGraph:
    graph = SocialGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


# --------------------------------------------------------------------------- #
# Graph invariants
# --------------------------------------------------------------------------- #


@DEFAULT_SETTINGS
@given(edges=edge_lists)
def test_edge_count_equals_distinct_pairs(edges):
    graph = _graph_from_edges(edges)
    distinct = {frozenset(edge) for edge in edges}
    assert graph.num_edges == len(distinct)
    assert sum(graph.degree(node) for node in graph.nodes()) == 2 * graph.num_edges


@DEFAULT_SETTINGS
@given(edges=edge_lists)
def test_adjacency_is_symmetric(edges):
    graph = _graph_from_edges(edges)
    for u, v in graph.edges():
        assert graph.has_edge(v, u)
        assert v in set(graph.neighbors(u))
        assert u in set(graph.neighbors(v))


@DEFAULT_SETTINGS
@given(edges=edge_lists)
def test_degree_normalized_weights_sum_to_one(edges):
    graph = apply_degree_normalized_weights(_graph_from_edges(edges))
    for node in graph.nodes():
        if graph.degree(node) > 0:
            assert math.isclose(graph.total_in_weight(node), 1.0, abs_tol=1e-9)
    graph.validate(require_positive_weights=True)


@DEFAULT_SETTINGS
@given(edges=edge_lists)
def test_connected_components_partition_the_nodes(edges):
    graph = _graph_from_edges(edges)
    components = connected_components(graph)
    all_nodes = [node for component in components for node in component]
    assert sorted(all_nodes, key=repr) == sorted(graph.nodes(), key=repr)
    assert len(all_nodes) == len(set(all_nodes))


@DEFAULT_SETTINGS
@given(edges=edge_lists, data=st.data())
def test_nodes_on_simple_paths_contains_endpoints_and_shortest_path(edges, data):
    graph = _graph_from_edges(edges)
    nodes = graph.node_list()
    source = data.draw(st.sampled_from(nodes))
    target = data.draw(st.sampled_from(nodes))
    result = nodes_on_simple_paths(graph, source, target)
    from repro.graph.traversal import shortest_path

    path = shortest_path(graph, source, target)
    if path is None:
        if source != target:
            assert result == frozenset()
    else:
        assert source in result and target in result
        assert set(path) <= result


# --------------------------------------------------------------------------- #
# Realization invariants
# --------------------------------------------------------------------------- #


@DEFAULT_SETTINGS
@given(edges=edge_lists, seed=st.integers(0, 10_000), data=st.data())
def test_backward_trace_matches_full_realization_structure(edges, seed, data):
    graph = apply_degree_normalized_weights(_graph_from_edges(edges))
    nodes = graph.node_list()
    source = data.draw(st.sampled_from(nodes))
    target = data.draw(st.sampled_from([n for n in nodes if n != source] or nodes))
    if source == target:
        return
    friends = graph.neighbor_set(source)
    if target in friends:
        return
    realization = sample_realization(graph, rng=seed)
    traced, is_type1 = trace_target_path(realization, target, friends)
    assert target in traced
    assert not (traced & friends)
    if is_type1:
        # The final traced node's selected friend is inside the circle.
        assert any(realization.parent(node) in friends for node in traced)


@DEFAULT_SETTINGS
@given(edges=edge_lists, seed=st.integers(0, 10_000), data=st.data())
def test_reverse_sample_trace_is_connected_to_target(edges, seed, data):
    graph = apply_degree_normalized_weights(_graph_from_edges(edges))
    nodes = graph.node_list()
    source = data.draw(st.sampled_from(nodes))
    target = data.draw(st.sampled_from([n for n in nodes if n != source] or nodes))
    if source == target or graph.has_edge(source, target):
        return
    path = sample_target_path(graph, target, graph.neighbor_set(source), rng=seed)
    assert target in path.nodes
    # Each traced node is connected within the traced set (it is a path).
    if len(path.nodes) > 1:
        sub = graph.subgraph(path.nodes)
        assert len(connected_components(sub)) == 1


# --------------------------------------------------------------------------- #
# Set-cover invariants
# --------------------------------------------------------------------------- #


@DEFAULT_SETTINGS
@given(sets=set_families, data=st.data())
def test_greedy_min_union_is_feasible_and_consistent(sets, data):
    system = SetSystem(sets)
    p = data.draw(st.integers(1, system.total_weight))
    result = greedy_min_union(system, p)
    assert result.covered_weight >= p
    assert result.union == system.union_of(result.selected_indices)
    assert len(set(result.selected_indices)) == len(result.selected_indices)


@DEFAULT_SETTINGS
@given(sets=set_families, data=st.data())
def test_smallest_sets_union_is_feasible(sets, data):
    system = SetSystem(sets)
    p = data.draw(st.integers(1, system.total_weight))
    result = smallest_sets_union(system, p)
    assert result.covered_weight >= p
    assert result.union <= system.universe


@DEFAULT_SETTINGS
@given(sets=set_families, nodes=st.sets(st.integers(0, 12), max_size=8))
def test_deduplication_preserves_covered_weight(sets, nodes):
    system = SetSystem(sets)
    assert system.deduplicate().covered_weight(nodes) == system.covered_weight(nodes)


@DEFAULT_SETTINGS
@given(sets=set_families)
def test_deduplication_preserves_total_weight_and_universe(sets):
    system = SetSystem(sets)
    deduped = system.deduplicate()
    assert deduped.total_weight == system.total_weight
    assert deduped.universe == system.universe
    assert deduped.num_sets <= system.num_sets


# --------------------------------------------------------------------------- #
# Parameter / bound invariants
# --------------------------------------------------------------------------- #


@DEFAULT_SETTINGS
@given(
    alpha=st.floats(0.05, 1.0),
    fraction=st.floats(0.05, 0.9),
    num_nodes=st.integers(2, 5000),
    coupling=st.sampled_from(list(ParameterCoupling)),
)
def test_parameter_solver_satisfies_equation_13(alpha, fraction, num_nodes, coupling):
    epsilon = alpha * fraction
    parameters = solve_parameters(alpha, epsilon, num_nodes, coupling=coupling)
    assert abs(parameters.residual()) < 1e-6
    assert 0.0 < parameters.beta < alpha
    assert parameters.epsilon_one > 0.0


@DEFAULT_SETTINGS
@given(
    mean=st.floats(0.001, 1.0),
    delta=st.floats(0.01, 1.0),
    failure=st.floats(0.0001, 0.5),
)
def test_chernoff_sample_size_is_sufficient(mean, delta, failure):
    size = chernoff_sample_size(mean, delta, failure)
    assert chernoff_bound(size, mean, delta) <= failure * (1.0 + 1e-9)


@DEFAULT_SETTINGS
@given(
    eps_small=st.floats(0.01, 0.5),
    eps_big=st.floats(0.5, 1.0),
    delta=st.floats(0.001, 0.5),
)
def test_stopping_threshold_monotone_in_epsilon(eps_small, eps_big, delta):
    assert stopping_rule_threshold(eps_small, delta) >= stopping_rule_threshold(eps_big, delta)


@DEFAULT_SETTINGS
@given(
    low=st.floats(-100, 100),
    width=st.floats(0.1, 50),
    count=st.integers(1, 20),
    data=st.data(),
)
def test_interval_partition_covers_each_point_once(low, width, count, data):
    high = low + width
    parts = Interval.partition(low, high, count)
    assert len(parts) == count
    value = data.draw(st.floats(low, high - width * 1e-6))
    assert sum(part.contains(value) for part in parts) == 1
