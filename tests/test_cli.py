"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.datasets import load_dataset
from repro.graph.io import write_edge_list


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["raf"])
        assert args.dataset == "wiki"
        assert args.alpha == 0.1
        assert args.seed == 2019
        assert args.engine == "python"

    def test_engine_flag_accepted(self):
        args = build_parser().parse_args(["raf", "--engine", "auto"])
        assert args.engine == "auto"
        args = build_parser().parse_args(["maximize", "--budget", "3", "--engine", "python"])
        assert args.engine == "python"
        args = build_parser().parse_args(["experiment", "fig3", "--engine", "python"])
        assert args.engine == "python"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["raf", "--engine", "fortran"])

    def test_workers_flag_accepted(self):
        args = build_parser().parse_args(["raf", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["raf", "--workers", "auto"])
        assert args.workers == "auto"
        args = build_parser().parse_args(["matrix", "--workers", "2"])
        assert args.workers == 2
        assert build_parser().parse_args(["raf"]).workers is None

    def test_invalid_workers_rejected(self):
        for value in ("0", "-1", "many"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["raf", "--workers", value])

    def test_matrix_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.datasets == "wiki,hepth"
        assert args.algorithms == "raf,hd"
        assert args.output == "matrix-records"
        assert not args.fresh


class TestDatasetsCommand:
    def test_prints_table1(self, capsys):
        assert main(["datasets", "--scale", "0.005"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        for name in ("wiki", "hepth", "hepph", "youtube"):
            assert name in output


class TestRafCommand:
    def test_auto_pair_run(self, capsys):
        code = main([
            "--seed", "3", "raf", "--dataset", "wiki", "--scale", "0.04",
            "--alpha", "0.2", "--realizations", "1500", "--eval-samples", "200",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "auto-selected pair" in output
        assert "RAF invitation set" in output
        assert "pmax estimate" in output

    def test_auto_engine_run(self, capsys):
        code = main([
            "--seed", "3", "raf", "--dataset", "wiki", "--scale", "0.04",
            "--alpha", "0.2", "--realizations", "800", "--eval-samples", "100",
            "--engine", "auto",
        ])
        assert code == 0
        assert "RAF invitation set" in capsys.readouterr().out

    def test_explicit_pair_with_baselines(self, capsys):
        graph = load_dataset("wiki", scale=0.04, rng=3)
        # Find a valid non-adjacent pair deterministically.
        nodes = graph.node_list()
        source = nodes[0]
        target = next(n for n in reversed(nodes) if n != source and not graph.has_edge(source, n))
        code = main([
            "--seed", "3", "raf", "--dataset", "wiki", "--scale", "0.04",
            "--source", str(source), "--target", str(target),
            "--realizations", "1200", "--eval-samples", "150", "--compare-baselines",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Baselines at the same budget" in output
        assert "HD" in output and "SP" in output

    def test_source_without_target_is_an_error(self, capsys):
        code = main(["raf", "--dataset", "wiki", "--scale", "0.04", "--source", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_pair_reports_error(self, capsys):
        code = main([
            "raf", "--dataset", "wiki", "--scale", "0.04",
            "--source", "1", "--target", "1", "--realizations", "500",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestVmaxAndMaximize:
    def test_vmax_command(self, capsys):
        code = main([
            "--seed", "3", "vmax", "--dataset", "wiki", "--scale", "0.04",
        ])
        assert code == 0
        assert "|Vmax| =" in capsys.readouterr().out

    def test_maximize_command(self, capsys):
        code = main([
            "--seed", "3", "maximize", "--dataset", "wiki", "--scale", "0.04",
            "--budget", "8", "--realizations", "1200",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "budgeted invitation set" in output
        assert "fraction of pmax" in output


class TestMatrixCommand:
    _ARGS = [
        "--seed", "7", "matrix", "--datasets", "wiki", "--algorithms", "raf,hd",
        "--budgets", "3", "--scale", "0.03", "--realizations", "400",
        "--eval-samples", "120",
    ]

    def test_runs_grid_and_resumes(self, capsys, tmp_path):
        out = tmp_path / "records"
        assert main(self._ARGS + ["--output", str(out)]) == 0
        output = capsys.readouterr().out
        assert "Scenario matrix" in output
        assert "2 computed" in output
        assert len(list(out.glob("*.json"))) == 2

        # A second invocation resumes from the recorded cells.
        assert main(self._ARGS + ["--output", str(out)]) == 0
        assert "2 resumed" in capsys.readouterr().out

    def test_workers_flag_runs(self, capsys, tmp_path):
        out = tmp_path / "records"
        assert main(self._ARGS + ["--output", str(out), "--workers", "2"]) == 0
        assert "Scenario matrix" in capsys.readouterr().out

    def test_bad_budgets_reported(self, capsys, tmp_path):
        code = main(["matrix", "--budgets", "three", "--output", str(tmp_path / "r")])
        assert code == 1
        assert "comma-separated integers" in capsys.readouterr().err


class TestExperimentCommand:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.005", "--pairs", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig3_single_dataset(self, capsys):
        code = main([
            "--seed", "11", "experiment", "fig3", "--dataset", "wiki", "--scale", "0.04",
            "--pairs", "1", "--realizations", "800", "--eval-samples", "100",
        ])
        assert code == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_table2_single_dataset(self, capsys):
        code = main([
            "--seed", "11", "experiment", "table2", "--dataset", "wiki", "--scale", "0.04",
            "--pairs", "1", "--realizations", "800", "--eval-samples", "100",
        ])
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    def test_fig6_single_dataset(self, capsys):
        code = main([
            "--seed", "11", "experiment", "fig6", "--dataset", "wiki", "--scale", "0.04",
            "--pairs", "1", "--realizations", "600", "--eval-samples", "100",
        ])
        assert code == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_edge_list_input(self, capsys, tmp_path):
        graph = load_dataset("wiki", scale=0.04, rng=13, weighted=False)
        path = tmp_path / "custom.txt"
        write_edge_list(graph, path)
        code = main([
            "--seed", "11", "experiment", "fig3", "--edge-list", str(path),
            "--pairs", "1", "--realizations", "800", "--eval-samples", "100",
        ])
        assert code == 0
        assert "Fig. 3" in capsys.readouterr().out
