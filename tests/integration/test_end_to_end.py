"""End-to-end integration tests of the full RAF pipeline.

These exercise the whole stack -- dataset stand-in, pair selection, RAF,
baselines, evaluation -- and assert the qualitative relationships the paper
reports: RAF meets its guarantee, stays within Vmax, and is at least as
effective as the HD and SP heuristics at the same invitation budget.
"""

from __future__ import annotations

import pytest

from repro.baselines.high_degree import high_degree_invitation
from repro.baselines.shortest_path import shortest_path_invitation
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, run_raf
from repro.core.parameters import SamplePolicy
from repro.core.vmax import compute_vmax
from repro.experiments.harness import evaluate_invitation
from repro.experiments.pair_selection import select_pairs
from repro.graph.datasets import load_dataset
from repro.graph.io import read_snap_graph, write_edge_list
from repro.graph.weights import apply_degree_normalized_weights

EVAL_SAMPLES = 1200
RAF_CONFIG = RAFConfig(
    epsilon=0.02,
    sample_policy=SamplePolicy.FIXED,
    fixed_realizations=4000,
    pmax_max_samples=40_000,
)


@pytest.fixture(scope="module")
def wiki_instance():
    graph = load_dataset("wiki", scale=0.06, rng=23)
    pairs = select_pairs(
        graph, 3, pmax_threshold=0.02, pmax_ceiling=0.5, min_distance=3,
        screen_samples=400, rng=29,
    )
    return graph, pairs


class TestRafPipeline:
    def test_guarantee_holds_for_each_pair(self, wiki_instance):
        graph, pairs = wiki_instance
        alpha = 0.2
        for index, pair in enumerate(pairs):
            problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)
            result = run_raf(problem, RAF_CONFIG, rng=100 + index)
            achieved = evaluate_invitation(
                graph, pair.source, pair.target, result.invitation,
                num_samples=EVAL_SAMPLES, rng=200 + index,
            )
            # f(I*) >= (alpha - eps) * pmax, with Monte Carlo slack.
            floor = (alpha - RAF_CONFIG.epsilon) * pair.pmax
            assert achieved >= floor - 0.04

    def test_invitation_is_subset_of_vmax_and_smaller(self, wiki_instance):
        graph, pairs = wiki_instance
        for index, pair in enumerate(pairs):
            problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=0.1)
            result = run_raf(problem, RAF_CONFIG, rng=300 + index)
            vmax = compute_vmax(graph, pair.source, pair.target)
            assert result.invitation <= vmax
            assert result.size <= len(vmax)

    def test_raf_not_worse_than_baselines_at_equal_budget(self, wiki_instance):
        """The Fig. 3 relationship: averaged over pairs, RAF >= SP and RAF >= HD."""
        graph, pairs = wiki_instance
        alpha = 0.2
        raf_total, hd_total, sp_total = 0.0, 0.0, 0.0
        for index, pair in enumerate(pairs):
            problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)
            raf = run_raf(problem, RAF_CONFIG, rng=400 + index)
            budget = max(1, raf.size)
            hd = high_degree_invitation(problem, budget)
            sp = shortest_path_invitation(problem, budget)
            raf_total += evaluate_invitation(
                graph, pair.source, pair.target, raf.invitation, EVAL_SAMPLES, rng=500 + index
            )
            hd_total += evaluate_invitation(
                graph, pair.source, pair.target, hd.invitation, EVAL_SAMPLES, rng=600 + index
            )
            sp_total += evaluate_invitation(
                graph, pair.source, pair.target, sp.invitation, EVAL_SAMPLES, rng=700 + index
            )
        assert raf_total >= hd_total - 0.02
        assert raf_total >= sp_total - 0.02

    def test_alpha_one_solution_is_vmax_superset_of_raf(self, wiki_instance):
        graph, pairs = wiki_instance
        pair = pairs[0]
        vmax = compute_vmax(graph, pair.source, pair.target)
        problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=0.3)
        result = run_raf(problem, RAF_CONFIG, rng=800)
        assert result.invitation <= vmax
        f_vmax = evaluate_invitation(
            graph, pair.source, pair.target, vmax, EVAL_SAMPLES, rng=801
        )
        f_raf = evaluate_invitation(
            graph, pair.source, pair.target, result.invitation, EVAL_SAMPLES, rng=802
        )
        assert f_vmax >= f_raf - 0.03


class TestSnapFileWorkflow:
    def test_raf_runs_on_graph_loaded_from_edge_list(self, tmp_path):
        """The documented drop-in-your-own-SNAP-file workflow works end to end."""
        original = load_dataset("hepth", scale=0.02, rng=31, weighted=False)
        path = tmp_path / "hepth_sample.txt"
        write_edge_list(original, path, header="sampled hepth stand-in")
        graph = apply_degree_normalized_weights(read_snap_graph(path))
        pairs = select_pairs(
            graph, 1, pmax_threshold=0.02, pmax_ceiling=0.6, min_distance=3,
            screen_samples=300, rng=37,
        )
        pair = pairs[0]
        problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=0.2)
        result = run_raf(problem, RAF_CONFIG, rng=900)
        assert pair.target in result.invitation
        achieved = evaluate_invitation(
            graph, pair.source, pair.target, result.invitation, 800, rng=901
        )
        assert achieved > 0.0
