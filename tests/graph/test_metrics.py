"""Tests for repro.graph.metrics."""

from __future__ import annotations

import pytest

from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.metrics import GraphStats, average_degree, compute_stats, degree_histogram
from repro.graph.social_graph import SocialGraph


class TestAverageDegree:
    def test_empty_graph(self):
        assert average_degree(SocialGraph()) == 0.0

    def test_complete_graph(self):
        assert average_degree(complete_graph(5)) == pytest.approx(4.0)

    def test_path_graph(self):
        assert average_degree(path_graph(4)) == pytest.approx(2 * 3 / 4)


class TestDegreeHistogram:
    def test_star(self):
        histogram = degree_histogram(star_graph(4))
        assert histogram == {4: 1, 1: 4}

    def test_includes_isolated_nodes(self):
        graph = SocialGraph(nodes=["x"], edges=[(1, 2)])
        histogram = degree_histogram(graph)
        assert histogram[0] == 1
        assert histogram[1] == 2


class TestComputeStats:
    def test_basic_fields(self):
        stats = compute_stats(complete_graph(6), name="k6")
        assert stats.name == "k6"
        assert stats.num_nodes == 6
        assert stats.num_edges == 15
        assert stats.avg_degree == pytest.approx(5.0)
        assert stats.max_degree == 5
        assert stats.min_degree == 5
        assert stats.density == pytest.approx(1.0)
        assert stats.num_components == 1
        assert stats.largest_component_size == 6

    def test_disconnected_components_counted(self):
        graph = SocialGraph(edges=[(1, 2), (3, 4), (4, 5)])
        stats = compute_stats(graph)
        assert stats.num_components == 2
        assert stats.largest_component_size == 3

    def test_default_name_comes_from_graph(self):
        stats = compute_stats(SocialGraph(edges=[(1, 2)], name="tiny"))
        assert stats.name == "tiny"

    def test_as_row_matches_table1_columns(self):
        row = compute_stats(star_graph(3), name="star").as_row()
        assert set(row) == {"dataset", "nodes", "edges", "avg_degree"}
        assert row["dataset"] == "star"
        assert row["nodes"] == 4

    def test_stats_is_frozen(self):
        stats = compute_stats(path_graph(3))
        with pytest.raises(AttributeError):
            stats.num_nodes = 99  # type: ignore[misc]

    def test_empty_graph(self):
        stats = compute_stats(SocialGraph(), name="empty")
        assert stats.num_nodes == 0
        assert stats.avg_degree == 0.0
        assert stats.num_components == 0
        assert isinstance(stats, GraphStats)
