"""Tests for repro.graph.datasets."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.graph.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.graph.metrics import compute_stats


class TestDatasetSpec:
    def test_all_names_have_specs(self):
        for name in DATASET_NAMES:
            spec = dataset_spec(name)
            assert spec.name == name
            assert spec.paper_nodes > 0
            assert spec.paper_edges > 0
            assert spec.paper_avg_degree > 0

    def test_case_insensitive_lookup(self):
        assert dataset_spec("WIKI").name == "wiki"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ExperimentError):
            dataset_spec("facebook")

    def test_table1_values(self):
        wiki = dataset_spec("wiki")
        assert wiki.paper_nodes == 7_000
        assert wiki.paper_avg_degree == pytest.approx(14.7)
        youtube = dataset_spec("youtube")
        assert youtube.paper_nodes == 1_100_000
        assert youtube.paper_avg_degree == pytest.approx(5.54)


class TestLoadDataset:
    def test_scaled_node_count(self):
        graph = load_dataset("wiki", scale=0.05, rng=1)
        assert graph.num_nodes == 350

    def test_default_scale_used_when_none(self):
        spec = dataset_spec("wiki")
        graph = load_dataset("wiki", rng=1)
        assert graph.num_nodes == int(round(spec.paper_nodes * spec.default_scale))

    def test_minimum_size_floor(self):
        graph = load_dataset("wiki", scale=0.0001, rng=1)
        assert graph.num_nodes >= 16

    def test_weighted_by_default(self):
        graph = load_dataset("hepth", scale=0.02, rng=2)
        node = next(n for n in graph.nodes() if graph.degree(n) > 0)
        assert graph.total_in_weight(node) == pytest.approx(1.0)

    def test_unweighted_option(self):
        graph = load_dataset("hepth", scale=0.02, rng=2, weighted=False)
        u, v = next(iter(graph.edges()))
        assert graph.weight(u, v) == 0.0

    def test_deterministic_given_seed(self):
        a = load_dataset("hepph", scale=0.02, rng=5)
        b = load_dataset("hepph", scale=0.02, rng=5)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_graph_is_named_after_dataset(self):
        assert load_dataset("youtube", scale=0.001, rng=1).name == "youtube"

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_avg_degree_in_paper_ballpark(self, name):
        """The stand-ins should land within ~40% of the paper's average degree."""
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=min(spec.default_scale, 0.05), rng=3)
        avg_degree = compute_stats(graph).avg_degree
        assert 0.6 * spec.paper_avg_degree < avg_degree < 1.4 * spec.paper_avg_degree

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("wiki", scale=-1.0)
