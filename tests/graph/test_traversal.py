"""Tests for repro.graph.traversal.

The biconnected-component machinery is cross-checked against networkx on
random graphs, and the simple-path membership routine (the basis of the
Vmax computation) is cross-checked against brute-force path enumeration.
"""

from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.generators import (
    barabasi_albert_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import (
    articulation_points,
    bfs_distances,
    bfs_tree,
    biconnected_components,
    block_cut_tree,
    connected_component,
    connected_components,
    is_connected,
    nodes_on_simple_paths,
    shortest_path,
    vertex_disjoint_shortest_paths,
)


class TestBfs:
    def test_distances_on_path(self):
        distances = bfs_distances(path_graph(5), 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_multi_source(self):
        distances = bfs_distances(path_graph(5), [0, 4])
        assert distances[2] == 2
        assert distances[1] == 1
        assert distances[3] == 1

    def test_blocked_nodes_are_not_traversed(self):
        distances = bfs_distances(path_graph(5), 0, blocked={2})
        assert 3 not in distances
        assert 4 not in distances

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(path_graph(3), 99)

    def test_bfs_tree_parents(self):
        parents = bfs_tree(path_graph(4), 0)
        assert parents[0] is None
        assert parents[3] == 2


class TestShortestPath:
    def test_path_endpoints(self):
        path = shortest_path(grid_graph(3, 3), 0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == 5  # manhattan distance 4 -> 5 nodes

    def test_consecutive_nodes_are_adjacent(self):
        graph = erdos_renyi_graph(60, 0.08, rng=1)
        components = connected_components(graph)
        nodes = sorted(components[0])[:2]
        path = shortest_path(graph, nodes[0], nodes[1])
        assert path is not None
        for u, v in zip(path, path[1:]):
            assert graph.has_edge(u, v)

    def test_same_source_and_target(self):
        assert shortest_path(path_graph(3), 1, 1) == [1]

    def test_disconnected_returns_none(self):
        graph = SocialGraph(edges=[(1, 2), (3, 4)])
        assert shortest_path(graph, 1, 4) is None

    def test_blocked_internal_node_forces_detour(self):
        graph = cycle_graph(6)
        direct = shortest_path(graph, 0, 2)
        assert direct == [0, 1, 2]
        detour = shortest_path(graph, 0, 2, blocked={1})
        assert detour == [0, 5, 4, 3, 2]


class TestVertexDisjointShortestPaths:
    def test_cycle_has_two_disjoint_paths(self):
        paths = vertex_disjoint_shortest_paths(cycle_graph(6), 0, 3)
        assert len(paths) == 2
        internals = [set(path[1:-1]) for path in paths]
        assert internals[0].isdisjoint(internals[1])

    def test_path_graph_has_one(self):
        assert len(vertex_disjoint_shortest_paths(path_graph(5), 0, 4)) == 1

    def test_direct_edge_used_once(self):
        graph = SocialGraph(edges=[(0, 1), (0, 2), (2, 1)])
        paths = vertex_disjoint_shortest_paths(graph, 0, 1)
        assert [0, 1] in paths
        assert len(paths) == 2

    def test_max_paths_cap(self):
        paths = vertex_disjoint_shortest_paths(grid_graph(4, 4), 0, 15, max_paths=1)
        assert len(paths) == 1

    def test_paths_sorted_by_length(self):
        graph = SocialGraph(edges=[(0, 1), (1, 5), (0, 2), (2, 3), (3, 5)])
        paths = vertex_disjoint_shortest_paths(graph, 0, 5)
        lengths = [len(path) for path in paths]
        assert lengths == sorted(lengths)

    def test_source_equals_target(self):
        assert vertex_disjoint_shortest_paths(path_graph(3), 1, 1) == [[1]]


class TestConnectivity:
    def test_connected_component(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3), (5, 6)])
        assert connected_component(graph, 1) == {1, 2, 3}

    def test_components_sorted_by_size(self):
        graph = SocialGraph(edges=[(1, 2), (3, 4), (4, 5), (5, 6)])
        components = connected_components(graph)
        assert len(components[0]) == 4
        assert len(components[1]) == 2

    def test_isolated_nodes_are_singleton_components(self):
        graph = SocialGraph(nodes=["x"], edges=[(1, 2)])
        components = connected_components(graph)
        assert frozenset({"x"}) in components

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(SocialGraph(edges=[(1, 2), (3, 4)]))
        assert is_connected(SocialGraph())


def _to_networkx(graph: SocialGraph) -> nx.Graph:
    result = nx.Graph()
    result.add_nodes_from(graph.nodes())
    result.add_edges_from(graph.edges())
    return result


class TestBiconnectedComponents:
    def test_single_edge_is_a_block(self):
        assert biconnected_components(path_graph(2)) == [frozenset({0, 1})]

    def test_path_graph_blocks_are_edges(self):
        blocks = biconnected_components(path_graph(4))
        assert sorted(blocks, key=sorted) == [
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        ]

    def test_cycle_is_single_block(self):
        blocks = biconnected_components(cycle_graph(5))
        assert blocks == [frozenset(range(5))]

    def test_articulation_points_of_star(self):
        assert articulation_points(star_graph(4)) == frozenset({0})

    def test_articulation_points_of_cycle(self):
        assert articulation_points(cycle_graph(5)) == frozenset()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_matches_networkx_on_random_graphs(self, seed):
        graph = erdos_renyi_graph(40, 0.07, rng=seed)
        ours = {frozenset(block) for block in biconnected_components(graph)}
        reference = {frozenset(block) for block in nx.biconnected_components(_to_networkx(graph))}
        assert ours == reference

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_articulation_points_match_networkx(self, seed):
        graph = barabasi_albert_graph(60, 1, rng=seed)
        ours = set(articulation_points(graph))
        reference = set(nx.articulation_points(_to_networkx(graph)))
        assert ours == reference


class TestBlockCutTree:
    def test_tree_node_of_cut_vertex(self):
        tree = block_cut_tree(star_graph(3))
        assert tree.tree_node_of(0) == ("cut", 0)
        kind, index = tree.tree_node_of(1)
        assert kind == "block"
        assert 1 in tree.blocks[index]

    def test_tree_path_between_leaves_of_star(self):
        tree = block_cut_tree(star_graph(3))
        path = tree.tree_path(tree.tree_node_of(1), tree.tree_node_of(2))
        assert path is not None
        assert ("cut", 0) in path

    def test_isolated_node_has_no_tree_node(self):
        graph = SocialGraph(nodes=["iso"], edges=[(1, 2)])
        assert block_cut_tree(graph).tree_node_of("iso") is None


def _brute_force_path_nodes(graph: SocialGraph, source, target) -> frozenset:
    """Nodes on at least one simple source-target path, by exhaustive search."""
    nx_graph = _to_networkx(graph)
    if source == target:
        return frozenset({source})
    if source not in nx_graph or target not in nx_graph:
        return frozenset()
    result: set = set()
    if nx.has_path(nx_graph, source, target):
        for path in nx.all_simple_paths(nx_graph, source, target):
            result.update(path)
    return frozenset(result)


class TestNodesOnSimplePaths:
    def test_path_graph(self):
        assert nodes_on_simple_paths(path_graph(5), 0, 4) == frozenset(range(5))

    def test_cycle_graph_includes_both_arcs(self):
        assert nodes_on_simple_paths(cycle_graph(6), 0, 3) == frozenset(range(6))

    def test_dangling_branch_excluded(self):
        #   0 - 1 - 2 - 3   with a pendant 4 attached to 1.
        graph = SocialGraph(edges=[(0, 1), (1, 2), (2, 3), (1, 4)])
        assert nodes_on_simple_paths(graph, 0, 3) == frozenset({0, 1, 2, 3})

    def test_disconnected_pair(self):
        graph = SocialGraph(edges=[(0, 1), (2, 3)])
        assert nodes_on_simple_paths(graph, 0, 3) == frozenset()

    def test_source_equals_target(self):
        assert nodes_on_simple_paths(path_graph(3), 1, 1) == frozenset({1})

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_matches_brute_force_on_random_graphs(self, seed, rng):
        graph = erdos_renyi_graph(12, 0.2, rng=seed)
        nodes = graph.node_list()
        for source, target in itertools.islice(itertools.combinations(nodes, 2), 12):
            expected = _brute_force_path_nodes(graph, source, target)
            assert nodes_on_simple_paths(graph, source, target) == expected
