"""Tests for repro.graph.compiled (the frozen CSR snapshot)."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights


class TestRoundTrip:
    def test_nodes_and_counts(self, small_ba_graph):
        compiled = CompiledGraph(small_ba_graph)
        assert compiled.num_nodes == small_ba_graph.num_nodes
        assert compiled.num_edges == small_ba_graph.num_edges
        assert tuple(compiled.nodes) == tuple(small_ba_graph.nodes())
        assert len(compiled) == small_ba_graph.num_nodes

    def test_degrees(self, small_ba_graph):
        compiled = CompiledGraph(small_ba_graph)
        for node in small_ba_graph.nodes():
            assert compiled.degree(node) == small_ba_graph.degree(node)

    def test_in_weights(self, small_ba_graph):
        compiled = CompiledGraph(small_ba_graph)
        for node in small_ba_graph.nodes():
            expected = dict(small_ba_graph.in_weights(node))
            actual = compiled.in_weights(node)
            assert set(actual) == set(expected)
            for friend, weight in expected.items():
                assert actual[friend] == pytest.approx(weight, abs=1e-12)

    def test_pairwise_weights(self, triangle_graph):
        compiled = CompiledGraph(triangle_graph)
        for u in triangle_graph.nodes():
            for v in triangle_graph.nodes():
                if u != v:
                    assert compiled.weight(u, v) == pytest.approx(triangle_graph.weight(u, v))

    def test_normalization_totals(self, small_ba_graph):
        compiled = CompiledGraph(small_ba_graph)
        for node in small_ba_graph.nodes():
            total = compiled.total_in_weight(node)
            assert total == pytest.approx(small_ba_graph.total_in_weight(node), abs=1e-12)
            assert total <= 1.0 + 1e-9
            assert compiled.stop_probability(node) == pytest.approx(max(0.0, 1.0 - total))

    def test_edges_match(self, diamond_graph):
        compiled = CompiledGraph(diamond_graph)
        expected = {frozenset(edge) for edge in diamond_graph.edges()}
        actual = {frozenset(edge) for edge in compiled.edges()}
        assert actual == expected

    def test_membership_and_interning(self, triangle_graph):
        compiled = CompiledGraph(triangle_graph)
        for i, node in enumerate(compiled.nodes):
            assert compiled.index_of(node) == i
            assert compiled.node_at(i) == node
            assert node in compiled
        assert "ghost" not in compiled
        with pytest.raises(NodeNotFoundError):
            compiled.index_of("ghost")

    def test_indices_of_skips_unknown(self, triangle_graph):
        compiled = CompiledGraph(triangle_graph)
        indices = compiled.indices_of(["a", "ghost"])
        assert indices == frozenset({compiled.index_of("a")})

    def test_empty_and_isolated(self):
        graph = SocialGraph(nodes=["x", "y"])
        compiled = CompiledGraph(graph)
        assert compiled.num_nodes == 2
        assert compiled.num_edges == 0
        assert compiled.degree("x") == 0
        assert compiled.total_in_weight("x") == 0.0
        assert compiled.select_parent(0, 0.5) == -1


class TestSelectParent:
    def test_matches_linear_scan(self, small_ba_graph):
        """The binary search selects the same friend as the dict linear scan."""
        compiled = CompiledGraph(small_ba_graph)
        for node in small_ba_graph.nodes():
            index = compiled.index_of(node)
            for step in range(21):
                draw = step / 20.0
                cumulative = 0.0
                expected = None
                for friend, weight in small_ba_graph.in_weights(node).items():
                    cumulative += weight
                    if draw < cumulative:
                        expected = friend
                        break
                selected = compiled.select_parent(index, draw)
                actual = None if selected < 0 else compiled.node_at(selected)
                assert actual == expected

    def test_tail_draw_selects_nobody(self):
        graph = SocialGraph(edges=[("a", "b", 0.3, 0.3)])
        compiled = CompiledGraph(graph)
        index = compiled.index_of("a")
        assert compiled.node_at(compiled.select_parent(index, 0.1)) == "b"
        assert compiled.select_parent(index, 0.999999) == -1


class TestAliasTables:
    """Vose alias tables: exact per-entry selection mass, CSR-aligned."""

    @staticmethod
    def _selection_mass(compiled, node_index):
        """P(entry k) under the O(1) alias lookup, computed exactly.

        A uniform cell ``k`` is hit with probability ``1/d``; it keeps its
        own entry with probability ``alias_prob[lo+k]`` and falls through
        to ``alias_index[lo+k]`` otherwise.
        """
        alias_prob, alias_index = compiled.alias_tables()
        lo, hi = compiled.indptr[node_index], compiled.indptr[node_index + 1]
        degree = hi - lo
        mass = [0.0] * degree
        for k in range(degree):
            mass[k] += alias_prob[lo + k] / degree
            mass[alias_index[lo + k]] += (1.0 - alias_prob[lo + k]) / degree
        return mass

    def test_mass_identity_on_every_node(self, small_ba_graph):
        """Alias lookup probability == w_k / total for every in-edge."""
        compiled = compile_graph(small_ba_graph)
        for v in range(compiled.num_nodes):
            lo, hi = compiled.indptr[v], compiled.indptr[v + 1]
            if lo == hi:
                continue
            total = compiled.totals[v]
            mass = self._selection_mass(compiled, v)
            previous = 0.0
            for k in range(hi - lo):
                weight = compiled.cum_weights[lo + k] - previous
                previous = compiled.cum_weights[lo + k]
                assert mass[k] == pytest.approx(weight / total, abs=1e-9)

    def test_columns_are_csr_aligned_and_local(self, small_ba_graph):
        compiled = compile_graph(small_ba_graph)
        alias_prob, alias_index = compiled.alias_tables()
        assert len(alias_prob) == len(compiled.parents)
        assert len(alias_index) == len(compiled.parents)
        for v in range(compiled.num_nodes):
            lo, hi = compiled.indptr[v], compiled.indptr[v + 1]
            for k in range(hi - lo):
                assert 0.0 <= alias_prob[lo + k] <= 1.0 + 1e-12
                assert 0 <= alias_index[lo + k] < hi - lo

    def test_built_once_per_snapshot(self, small_ba_graph):
        compiled = compile_graph(small_ba_graph)
        assert compiled.alias_tables() is compiled.alias_tables()

    def test_isolated_nodes_and_empty_graph(self):
        compiled = CompiledGraph(SocialGraph(nodes=["x", "y"]))
        alias_prob, alias_index = compiled.alias_tables()
        assert len(alias_prob) == 0
        assert len(alias_index) == 0

    def test_single_edge_table_is_identity(self):
        compiled = CompiledGraph(SocialGraph(edges=[("a", "b", 0.3, 0.3)]))
        alias_prob, alias_index = compiled.alias_tables()
        assert list(alias_prob) == [1.0, 1.0]
        assert list(alias_index) == [0, 0]


class TestCompileCache:
    def test_cached_until_mutation(self):
        graph = apply_degree_normalized_weights(
            SocialGraph(edges=[("a", "b"), ("b", "c")])
        )
        first = compile_graph(graph)
        assert compile_graph(graph) is first

    def test_invalidated_by_add_edge(self):
        graph = apply_degree_normalized_weights(
            SocialGraph(edges=[("a", "b"), ("b", "c")])
        )
        first = compile_graph(graph)
        graph.add_edge("a", "c", weight_uv=0.1, weight_vu=0.1)
        second = compile_graph(graph)
        assert second is not first
        assert second.num_edges == 3

    def test_invalidated_by_set_weight(self):
        graph = SocialGraph(edges=[("a", "b", 0.5, 0.5)])
        first = compile_graph(graph)
        graph.set_weight("a", "b", 0.25)
        second = compile_graph(graph)
        assert second is not first
        assert second.weight("a", "b") == pytest.approx(0.25)

    def test_version_counter_monotonic(self):
        graph = SocialGraph()
        version = graph.version
        graph.add_node("a")
        assert graph.version > version
        version = graph.version
        graph.add_node("a")  # duplicate: no mutation
        assert graph.version == version


class TestGraphVersion:
    def test_compile_graph_records_the_source_version(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.3)])
        compiled = compile_graph(graph)
        assert compiled.graph_version == graph.version
        graph.set_weight(1, 2, 0.4)
        fresh = compile_graph(graph)
        assert fresh is not compiled
        assert fresh.graph_version == graph.version > compiled.graph_version

    def test_direct_construction_has_no_version(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.3)])
        assert CompiledGraph(graph).graph_version is None


class TestReverseReachable:
    """The conservative affected-set BFS behind delta-scoped invalidation."""

    @staticmethod
    def _chain_plus_pair():
        # 0-1-2-3 chain, disjoint 8-9 pair, all positive weights.
        graph = SocialGraph(
            edges=[(0, 1, 0.3, 0.3), (1, 2, 0.3, 0.3), (2, 3, 0.3, 0.3), (8, 9, 0.4, 0.4)]
        )
        return compile_graph(graph)

    def test_component_closure(self):
        from repro.graph.compiled import reverse_reachable

        compiled = self._chain_plus_pair()
        assert reverse_reachable(compiled, [8]) == frozenset({8, 9})
        assert reverse_reachable(compiled, [1]) == frozenset({0, 1, 2, 3})
        assert reverse_reachable(compiled, [1, 8]) == frozenset({0, 1, 2, 3, 8, 9})

    def test_zero_weight_edges_block_walk_steps(self):
        from repro.graph.compiled import reverse_reachable

        # w(1, 2) == 0: node 2 can never step into 1, so a change at 0 or 1
        # cannot affect 2's streams -- but 1 *can* step into 2 (w(2,1) > 0),
        # so a change at 2 does affect 1.
        graph = SocialGraph(edges=[(0, 1, 0.3, 0.3), (1, 2, 0.0, 0.3)])
        compiled = compile_graph(graph)
        assert reverse_reachable(compiled, [0]) == frozenset({0, 1})
        assert reverse_reachable(compiled, [2]) == frozenset({0, 1, 2})

    def test_unknown_sources_are_skipped(self):
        from repro.graph.compiled import reverse_reachable

        compiled = self._chain_plus_pair()
        assert reverse_reachable(compiled, ["nope"]) == frozenset()
        assert reverse_reachable(compiled, ["nope", 8]) == frozenset({8, 9})

    def test_caps_return_none(self):
        from repro.graph.compiled import reverse_reachable

        compiled = self._chain_plus_pair()
        assert reverse_reachable(compiled, [0], max_nodes=2) is None
        assert reverse_reachable(compiled, [0], max_hops=1) is None
        # caps that the closure fits inside do not trigger the fallback
        assert reverse_reachable(compiled, [8], max_hops=2, max_nodes=2) == frozenset({8, 9})

    def test_soundness_against_brute_force(self, small_ba_graph):
        from repro.graph.compiled import reverse_reachable

        compiled = compile_graph(small_ba_graph)
        affected = reverse_reachable(compiled, [0], max_hops=10_000, max_nodes=10_000)
        # brute-force closure over "a steps into b iff w(b, a) > 0"
        expected = {0}
        grew = True
        while grew:
            grew = False
            for b in list(expected):
                for a in small_ba_graph.neighbors(b):
                    if a not in expected and small_ba_graph.weight(b, a) > 0.0:
                        expected.add(a)
                        grew = True
        assert affected == frozenset(expected)
