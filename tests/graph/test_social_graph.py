"""Tests for repro.graph.social_graph."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, WeightError
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights


class TestConstruction:
    def test_empty(self):
        graph = SocialGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_nodes_only(self):
        graph = SocialGraph(nodes=[1, 2, 3])
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_two_tuple_edges(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_four_tuple_edges_carry_weights(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.7)])
        assert graph.weight(1, 2) == 0.3
        assert graph.weight(2, 1) == 0.7

    def test_bad_edge_tuple_length(self):
        with pytest.raises(ValueError):
            SocialGraph(edges=[(1, 2, 0.3)])

    def test_from_edges(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        assert graph.has_edge(0, 1) and graph.has_edge(2, 1)

    def test_name(self):
        assert SocialGraph(name="wiki").name == "wiki"


class TestMutation:
    def test_add_node_idempotent(self):
        graph = SocialGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        graph = SocialGraph()
        graph.add_edge("a", "b")
        assert graph.has_node("a") and graph.has_node("b")

    def test_add_edge_twice_keeps_single_edge(self):
        graph = SocialGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2, weight_uv=0.4)
        assert graph.num_edges == 1
        assert graph.weight(1, 2) == 0.4

    def test_self_loop_rejected(self):
        graph = SocialGraph()
        with pytest.raises(WeightError):
            graph.add_edge(1, 1)

    def test_weight_out_of_range_rejected(self):
        graph = SocialGraph()
        with pytest.raises(WeightError):
            graph.add_edge(1, 2, weight_uv=1.5)

    def test_remove_edge(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = SocialGraph(nodes=[1, 2])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_node_drops_incident_edges(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3), (1, 3)])
        graph.remove_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            SocialGraph().remove_node("x")

    def test_set_weight(self):
        graph = SocialGraph(edges=[(1, 2)])
        graph.set_weight(1, 2, 0.25)
        assert graph.weight(1, 2) == 0.25
        assert graph.weight(2, 1) == 0.0

    def test_set_weight_missing_edge(self):
        graph = SocialGraph(nodes=[1, 2])
        with pytest.raises(EdgeNotFoundError):
            graph.set_weight(1, 2, 0.5)


class TestInspection:
    def test_len_and_contains(self):
        graph = SocialGraph(nodes=[1, 2])
        assert len(graph) == 2
        assert 1 in graph
        assert 3 not in graph

    def test_iteration(self):
        graph = SocialGraph(nodes=["a", "b"])
        assert set(graph) == {"a", "b"}

    def test_edges_each_once(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3), (3, 1)])
        edges = list(graph.edges())
        assert len(edges) == 3
        normalized = {frozenset(edge) for edge in edges}
        assert normalized == {frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 1})}

    def test_neighbors_and_degree(self):
        graph = SocialGraph(edges=[(1, 2), (1, 3)])
        assert set(graph.neighbors(1)) == {2, 3}
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1

    def test_neighbor_set_is_frozenset(self):
        graph = SocialGraph(edges=[(1, 2)])
        assert isinstance(graph.neighbor_set(1), frozenset)

    def test_neighbors_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            list(SocialGraph().neighbors("ghost"))

    def test_degree_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            SocialGraph().degree("ghost")

    def test_weight_for_non_friends_is_zero(self):
        graph = SocialGraph(nodes=[1, 2])
        assert graph.weight(1, 2) == 0.0

    def test_weight_unknown_node(self):
        graph = SocialGraph(nodes=[1])
        with pytest.raises(NodeNotFoundError):
            graph.weight(1, 99)

    def test_in_weights_is_read_only(self):
        graph = SocialGraph(edges=[(1, 2, 0.5, 0.5)])
        weights = graph.in_weights(2)
        with pytest.raises(TypeError):
            weights[1] = 0.9
        assert graph.weight(1, 2) == 0.5

    def test_in_weights_is_a_live_view(self):
        graph = SocialGraph(edges=[(1, 2, 0.5, 0.5)])
        weights = graph.in_weights(2)
        graph.set_weight(1, 2, 0.25)
        assert weights[1] == 0.25

    def test_total_in_weight(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.1), (3, 2, 0.4, 0.2)])
        assert graph.total_in_weight(2) == pytest.approx(0.7)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = SocialGraph(edges=[(1, 2, 0.5, 0.5)])
        clone = graph.copy()
        clone.set_weight(1, 2, 0.1)
        clone.add_edge(2, 3)
        assert graph.weight(1, 2) == 0.5
        assert not graph.has_node(3)

    def test_subgraph_keeps_weights(self):
        graph = SocialGraph(edges=[(1, 2, 0.2, 0.3), (2, 3, 0.4, 0.5)])
        sub = graph.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.weight(1, 2) == 0.2
        assert sub.weight(2, 1) == 0.3

    def test_subgraph_unknown_node(self):
        graph = SocialGraph(nodes=[1])
        with pytest.raises(NodeNotFoundError):
            graph.subgraph([1, 99])

    def test_without_nodes(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3), (3, 4)])
        reduced = graph.without_nodes([2])
        assert not reduced.has_node(2)
        assert reduced.has_edge(3, 4)
        assert reduced.num_edges == 1

    def test_networkx_round_trip(self):
        graph = SocialGraph(edges=[(1, 2, 0.2, 0.8), (2, 3, 0.5, 0.5)], name="rt")
        back = SocialGraph.from_networkx(graph.to_networkx(), name="rt")
        assert back.num_nodes == graph.num_nodes
        assert back.num_edges == graph.num_edges
        assert back.weight(1, 2) == 0.2
        assert back.weight(2, 1) == 0.8


class TestValidation:
    def test_validate_accepts_normalized(self, small_ba_graph):
        small_ba_graph.validate(require_positive_weights=True)

    def test_validate_rejects_overweight_node(self):
        graph = SocialGraph(edges=[(1, 2, 0.7, 0.7), (3, 2, 0.7, 0.7)])
        with pytest.raises(WeightError):
            graph.validate()

    def test_validate_positive_weights(self):
        graph = SocialGraph(edges=[(1, 2)])
        graph.validate()  # zero weights allowed by default
        with pytest.raises(WeightError):
            graph.validate(require_positive_weights=True)

    def test_is_normalized(self):
        good = apply_degree_normalized_weights(SocialGraph(edges=[(1, 2), (2, 3)]))
        assert good.is_normalized()
        bad = SocialGraph(edges=[(1, 2, 0.8, 0.8), (3, 2, 0.8, 0.8)])
        assert not bad.is_normalized()


class TestMutationLog:
    """The structured mutation log behind delta-scoped pool invalidation."""

    def test_every_version_bump_logs_exactly_one_event(self):
        graph = SocialGraph()
        before = graph.version
        graph.add_edge(1, 2, 0.3, 0.3)  # two add_node events + one add_edge
        events = graph.mutations_since(before)
        assert graph.version - before == len(events) == 3
        assert [event.kind for event in events] == ["add_node", "add_node", "add_edge"]

    def test_touched_sets_name_the_changed_in_rows(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.3), (2, 3, 0.3, 0.3)])
        version = graph.version
        graph.set_weight(1, 2, 0.4)
        (event,) = graph.mutations_since(version)
        assert event.kind == "set_weight"
        assert event.touched == (2,)  # only node 2's in-row changed
        version = graph.version
        graph.remove_edge(2, 3)
        (event,) = graph.mutations_since(version)
        assert event.kind == "remove_edge" and set(event.touched) == {2, 3}

    def test_add_node_touches_no_rows(self):
        graph = SocialGraph()
        version = graph.version
        graph.add_node("solo")
        (event,) = graph.mutations_since(version)
        assert event.kind == "add_node" and event.touched == ()

    def test_mutations_since_now_is_empty(self):
        graph = SocialGraph(edges=[(1, 2)])
        assert graph.mutations_since(graph.version) == ()

    def test_mutations_since_beyond_retention_is_none(self):
        from repro.graph.social_graph import MUTATION_LOG_LIMIT

        graph = SocialGraph()
        for index in range(MUTATION_LOG_LIMIT + 2):
            graph.add_node(index)
        assert graph.mutations_since(0) is None
        assert graph.mutations_since(graph.version + 1) is None  # the future
        recent = graph.mutations_since(graph.version - 3)
        assert recent is not None and len(recent) == 3

    def test_invalidate_logs_an_opaque_event(self):
        graph = SocialGraph(edges=[(1, 2)])
        version = graph.version
        graph._invalidate()
        (event,) = graph.mutations_since(version)
        assert event.kind == "opaque" and event.touched is None


class TestNoOpMutations:
    """Writes that change nothing must not bump the version (cache warmth)."""

    def test_readd_edge_with_identical_weights_is_a_noop(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.4)])
        version = graph.version
        graph.add_edge(1, 2, 0.3, 0.4)
        assert graph.version == version
        graph.add_edge(2, 1, 0.4, 0.3)  # same edge named from the other side
        assert graph.version == version

    def test_readd_edge_with_changed_weights_still_invalidates(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.4)])
        version = graph.version
        graph.add_edge(1, 2, 0.35, 0.4)
        assert graph.version == version + 1
        assert graph.weight(1, 2) == 0.35

    def test_readd_invalid_weight_still_rejected(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.4)])
        with pytest.raises(WeightError):
            graph.add_edge(1, 2, 1.5, 0.4)

    def test_set_weight_unchanged_is_a_noop(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.4)])
        version = graph.version
        graph.set_weight(1, 2, 0.3)
        assert graph.version == version

    def test_set_weight_changed_invalidates(self):
        graph = SocialGraph(edges=[(1, 2, 0.3, 0.4)])
        version = graph.version
        graph.set_weight(1, 2, 0.25)
        assert graph.version == version + 1

    def test_remove_node_bumps_version_exactly_once(self):
        graph = SocialGraph(edges=[(1, 2), (2, 3), (2, 4), (1, 3)])
        version = graph.version
        graph.remove_node(2)
        assert graph.version == version + 1
        (event,) = graph.mutations_since(version)
        assert event.kind == "remove_node"
        assert set(event.touched) == {1, 2, 3, 4}
        assert graph.num_edges == 1 and graph.has_edge(1, 3)
