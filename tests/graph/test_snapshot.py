"""Tests for the on-disk snapshot tier (DESIGN.md §8).

Covers the save/open round trip, the typed rejection paths (missing,
truncated, corrupted, wrong-version, digest-mismatched snapshots), the
memmap-vs-in-memory bit-identity contract on every engine, the parallel
worker reopen, cross-process open-after-save, and the CLI surface
(``repro compile-graph`` / ``--snapshot``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

import repro
from repro.cli import main
from repro.diffusion.engine import available_engines, create_engine
from repro.exceptions import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.graph.compiled import (
    SNAPSHOT_VERSION,
    CompiledGraph,
    compile_graph,
    read_snapshot_meta,
)
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel import fork_available
from repro.parallel.engine import ParallelEngine
from repro.pool.sample_pool import _csr_digest

SEED = 4242


@pytest.fixture
def int_graph():
    """A small integer-id graph (snapshots require int node ids)."""
    return apply_degree_normalized_weights(
        barabasi_albert_graph(80, 3, rng=SEED, name="snap-ba")
    )


@pytest.fixture
def snapshot(int_graph, tmp_path):
    """``int_graph`` saved to a snapshot directory; yields (graph, path)."""
    path = compile_graph(int_graph).save(tmp_path / "snap", weights="degree")
    return int_graph, path


def _sample_pair(graph):
    nodes = list(graph.node_list())
    source = nodes[0]
    target = next(n for n in nodes[::-1] if n != source and not graph.has_edge(source, n))
    return source, target


class TestSaveOpen:
    def test_round_trip_identity(self, snapshot):
        graph, path = snapshot
        compiled = compile_graph(graph)
        mapped = CompiledGraph.open(path)
        assert mapped.is_mapped and not compiled.is_mapped
        assert mapped.snapshot_path == path
        assert mapped.num_nodes == graph.num_nodes
        assert mapped.num_edges == graph.num_edges
        assert mapped.name == graph.name
        assert mapped.csr_digest() == compiled.csr_digest()
        assert tuple(mapped.nodes) == tuple(compiled.nodes)

    def test_columns_byte_identical(self, snapshot):
        graph, path = snapshot
        compiled = compile_graph(graph)
        mapped = CompiledGraph.open(path)
        for column in ("indptr", "parents", "cum_weights", "totals"):
            assert bytes(getattr(compiled, column)) == getattr(mapped, column).tobytes()
        prob, index = compiled.alias_tables()
        mapped_prob, mapped_index = mapped.alias_tables()
        assert bytes(prob) == mapped_prob.tobytes()
        assert bytes(index) == mapped_index.tobytes()

    def test_unmapped_open_matches(self, snapshot):
        _, path = snapshot
        mapped = CompiledGraph.open(path, mmap=True)
        loaded = CompiledGraph.open(path, mmap=False)
        assert not loaded.is_mapped or loaded.snapshot_path == path
        assert loaded.csr_digest() == mapped.csr_digest()
        assert loaded.parents.tobytes() == mapped.parents.tobytes()

    def test_mapped_node_ids_are_python_ints(self, snapshot):
        _, path = snapshot
        mapped = CompiledGraph.open(path)
        assert type(mapped.nodes[0]) is int
        assert all(type(node) is int for node in mapped.nodes)
        assert all(type(node) is int for node in mapped.nodes[2:5])
        assert type(mapped.node_at(0)) is int
        assert all(type(node) is int for node in mapped.neighbors(mapped.nodes[0]))

    def test_compat_surface_matches_source_graph(self, snapshot):
        graph, path = snapshot
        mapped = CompiledGraph.open(path)
        for node in graph.nodes():
            assert mapped.has_node(node)
            assert mapped.degree(node) == graph.degree(node)
            assert mapped.neighbor_set(node) == graph.neighbor_set(node)
            assert mapped.total_in_weight(node) == pytest.approx(
                graph.total_in_weight(node), abs=1e-12
            )
        assert mapped.is_normalized()
        u, v = next(iter(graph.edges()))
        assert mapped.has_edge(u, v) and mapped.has_edge(v, u)
        assert not mapped.has_node(10**9)

    def test_meta_fields(self, snapshot):
        graph, path = snapshot
        meta = read_snapshot_meta(path)
        assert meta["format_version"] == SNAPSHOT_VERSION
        assert meta["num_nodes"] == graph.num_nodes
        assert meta["num_edges"] == graph.num_edges
        assert meta["weights"] == "degree"
        assert meta["digest"] == compile_graph(graph).csr_digest()

    def test_verify_on_open(self, snapshot):
        _, path = snapshot
        mapped = CompiledGraph.open(path, verify=True)
        mapped.verify_integrity()

    def test_save_rejects_non_int_node_ids(self, tmp_path, triangle_graph):
        with pytest.raises(SnapshotFormatError, match="int"):
            compile_graph(triangle_graph).save(tmp_path / "bad")

    def test_reopen_detects_replaced_snapshot(self, snapshot, tmp_path):
        graph, path = snapshot
        mapped = CompiledGraph.open(path)
        other = apply_degree_normalized_weights(
            barabasi_albert_graph(60, 2, rng=SEED + 1, name="other")
        )
        compile_graph(other).save(path)
        with pytest.raises(SnapshotIntegrityError):
            mapped.reopen()


class TestRejection:
    """Every bad snapshot raises a typed repro error naming the culprit."""

    def test_missing_directory(self, tmp_path):
        missing = tmp_path / "nope"
        with pytest.raises(SnapshotError, match="nope"):
            CompiledGraph.open(missing)

    def test_missing_meta(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SnapshotFormatError, match="meta.json"):
            CompiledGraph.open(tmp_path / "empty")

    def test_invalid_meta_json(self, snapshot):
        _, path = snapshot
        (path / "meta.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotFormatError):
            CompiledGraph.open(path)

    def test_wrong_format_marker(self, snapshot):
        _, path = snapshot
        meta = json.loads((path / "meta.json").read_text())
        meta["format"] = "somebody-elses-format"
        (path / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(SnapshotFormatError, match="format"):
            CompiledGraph.open(path)

    def test_version_bump_rejected(self, snapshot):
        _, path = snapshot
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = SNAPSHOT_VERSION + 1
        (path / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(SnapshotVersionError, match=str(SNAPSHOT_VERSION + 1)):
            CompiledGraph.open(path)

    def test_missing_column(self, snapshot):
        _, path = snapshot
        (path / "parents.npy").unlink()
        with pytest.raises(SnapshotFormatError, match="parents"):
            CompiledGraph.open(path)

    def test_truncated_column(self, snapshot):
        _, path = snapshot
        column = path / "parents.npy"
        column.write_bytes(column.read_bytes()[:-64])
        with pytest.raises(SnapshotFormatError, match="parents"):
            CompiledGraph.open(path)

    def test_corrupted_column_header(self, snapshot):
        _, path = snapshot
        column = path / "cum_weights.npy"
        column.write_bytes(b"\x00" * 16 + column.read_bytes()[16:])
        with pytest.raises(SnapshotFormatError, match="cum_weights"):
            CompiledGraph.open(path)

    def test_wrong_dtype_column(self, snapshot):
        _, path = snapshot
        parents = np.load(path / "parents.npy")
        np.save(path / "parents.npy", parents.astype(np.int32))
        with pytest.raises(SnapshotFormatError, match="dtype"):
            CompiledGraph.open(path)

    def test_edge_count_mismatch(self, snapshot):
        _, path = snapshot
        meta = json.loads((path / "meta.json").read_text())
        meta["num_edges"] += 1
        (path / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(SnapshotFormatError):
            CompiledGraph.open(path)

    def test_digest_mismatch_on_verify(self, snapshot):
        _, path = snapshot
        parents = np.load(path / "parents.npy")
        parents[0] = (parents[0] + 1) % max(2, parents.max() + 1)
        np.save(path / "parents.npy", parents)
        with pytest.raises(SnapshotIntegrityError, match="digest"):
            CompiledGraph.open(path, verify=True)

    def test_unverified_open_defers_digest_check(self, snapshot):
        # Opening without verify=True is O(1); the mutated column is only
        # caught when the digest is actually recomputed.
        _, path = snapshot
        cum = np.load(path / "cum_weights.npy")
        if cum.size:
            cum[-1] = cum[-1] * 0.5 + 0.1
        np.save(path / "cum_weights.npy", cum)
        mapped = CompiledGraph.open(path)
        with pytest.raises(SnapshotIntegrityError):
            mapped.verify_integrity()


class TestEngineBitIdentity:
    def test_every_engine_identical_mapped_vs_inmemory(self, snapshot):
        graph, path = snapshot
        mapped = CompiledGraph.open(path)
        source, target = _sample_pair(graph)
        stop_set = graph.neighbor_set(source)
        for name in available_engines():
            if name == "auto":
                continue
            reference = create_engine(graph, name).sample_paths(
                target, stop_set, 300, rng=SEED
            )
            sampled = create_engine(mapped, name).sample_paths(
                target, stop_set, 300, rng=SEED
            )
            assert sampled == reference, f"engine {name!r} diverged on the mapped snapshot"

    def test_batch_kernel_identical(self, snapshot):
        graph, path = snapshot
        mapped = CompiledGraph.open(path)
        source, target = _sample_pair(graph)
        stop_set = graph.neighbor_set(source)
        for name in ("numpy", "numpy-alias"):
            if name not in available_engines():
                continue
            reference = create_engine(graph, name).sample_path_batch(
                target, stop_set, 200, rng=SEED
            )
            batch = create_engine(mapped, name).sample_path_batch(
                target, stop_set, 200, rng=SEED
            )
            assert batch.to_paths() == reference.to_paths()
            assert batch.type1_bytes() == reference.type1_bytes()

    def test_pool_digest_binds_snapshot(self, snapshot):
        graph, path = snapshot
        mapped = CompiledGraph.open(path)
        assert _csr_digest(mapped) == _csr_digest(compile_graph(graph))
        assert _csr_digest(mapped) == read_snapshot_meta(path)["digest"]


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestParallelReopen:
    def test_workers_reopen_mapped_snapshot(self, snapshot):
        graph, path = snapshot
        mapped = CompiledGraph.open(path)
        source, target = _sample_pair(graph)
        stop_set = graph.neighbor_set(source)
        # The invariant is workers=1 == workers=N on the same chunk layout;
        # the in-memory single-worker run is the reference stream.
        baseline = ParallelEngine(create_engine(graph, "python"), workers=1)
        parallel = ParallelEngine(create_engine(mapped, "python"), workers=2)
        try:
            reference = baseline.sample_paths(target, stop_set, 400, rng=SEED)
            sampled = parallel.sample_paths(target, stop_set, 400, rng=SEED)
        finally:
            baseline.close()
            parallel.close()
        assert sampled == reference


class TestCrossProcess:
    def test_open_after_save_in_fresh_process(self, snapshot):
        graph, path = snapshot
        expected = compile_graph(graph).csr_digest()
        script = (
            "import sys\n"
            "from repro.graph.compiled import CompiledGraph\n"
            "mapped = CompiledGraph.open(sys.argv[1], verify=True)\n"
            "print(mapped.csr_digest())\n"
            "print(mapped.num_nodes, mapped.num_edges)\n"
        )
        src_root = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(src_root))
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, env=env, check=True,
        )
        digest, counts = proc.stdout.strip().splitlines()
        assert digest == expected
        assert counts == f"{graph.num_nodes} {graph.num_edges}"


class TestCLI:
    def _edge_list(self, tmp_path):
        lines = [f"{i} {i + 1}" for i in range(11)] + ["3 7", "2 9", "0 5"]
        path = tmp_path / "edges.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_compile_graph_command(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        out_dir = tmp_path / "snap"
        assert main(["compile-graph", str(edge_list), str(out_dir)]) == 0
        output = capsys.readouterr().out
        assert "nodes" in output and "digest" in output
        meta = read_snapshot_meta(out_dir)
        assert meta["num_nodes"] == 12 and meta["num_edges"] == 14

    def test_raf_accepts_snapshot(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        out_dir = tmp_path / "snap"
        assert main(["compile-graph", str(edge_list), str(out_dir)]) == 0
        capsys.readouterr()
        code = main([
            "raf", "--snapshot", str(out_dir), "--source", "0", "--target", "4",
            "--realizations", "60", "--eval-samples", "30",
        ])
        assert code == 0
        assert "RAF invitation set" in capsys.readouterr().out

    def test_missing_snapshot_is_reported(self, tmp_path, capsys):
        code = main(["raf", "--snapshot", str(tmp_path / "missing"),
                     "--source", "0", "--target", "1"])
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_compile_graph_missing_edge_list(self, tmp_path, capsys):
        code = main(["compile-graph", str(tmp_path / "no-such.txt"),
                     str(tmp_path / "snap")])
        assert code == 1
        assert "no-such.txt" in capsys.readouterr().err
