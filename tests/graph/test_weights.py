"""Tests for repro.graph.weights."""

from __future__ import annotations

import pytest

from repro.exceptions import WeightError
from repro.graph.generators import path_graph, star_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import (
    apply_degree_normalized_weights,
    apply_explicit_weights,
    apply_random_weights,
    apply_uniform_weights,
    assert_degree_normalized,
    validate_weights,
)


class TestDegreeNormalized:
    def test_each_incoming_weight_is_one_over_degree(self):
        graph = apply_degree_normalized_weights(star_graph(4))
        # Leaves have degree 1, so their single incoming weight is 1.
        assert graph.weight(0, 1) == pytest.approx(1.0)
        # The centre has degree 4, so every incoming weight is 1/4.
        assert graph.weight(1, 0) == pytest.approx(0.25)

    def test_incoming_sums_to_one(self, small_ba_graph):
        for node in small_ba_graph.nodes():
            if small_ba_graph.degree(node) > 0:
                assert small_ba_graph.total_in_weight(node) == pytest.approx(1.0)

    def test_returns_same_graph_for_chaining(self):
        graph = path_graph(3)
        assert apply_degree_normalized_weights(graph) is graph

    def test_isolated_nodes_ignored(self):
        graph = SocialGraph(nodes=["lonely"], edges=[(1, 2)])
        apply_degree_normalized_weights(graph)
        assert graph.total_in_weight("lonely") == 0.0

    def test_assert_degree_normalized_accepts(self):
        assert_degree_normalized(apply_degree_normalized_weights(path_graph(4)))

    def test_assert_degree_normalized_rejects(self):
        graph = apply_uniform_weights(path_graph(4), weight=0.1)
        with pytest.raises(WeightError):
            assert_degree_normalized(graph)


class TestUniform:
    def test_constant_weight(self):
        graph = apply_uniform_weights(path_graph(4), weight=0.2)
        assert graph.weight(0, 1) == pytest.approx(0.2)

    def test_normalization_caps_incoming_sum(self):
        graph = apply_uniform_weights(star_graph(8), weight=0.3)
        # The centre has 8 neighbours; 8 * 0.3 > 1 so weights are scaled to 1/8.
        assert graph.total_in_weight(0) == pytest.approx(1.0)
        assert graph.weight(1, 0) == pytest.approx(1.0 / 8.0)

    def test_without_normalization_keeps_raw_value(self):
        graph = apply_uniform_weights(star_graph(3), weight=0.1, normalize=False)
        assert graph.weight(1, 0) == pytest.approx(0.1)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            apply_uniform_weights(path_graph(3), weight=1.5)


class TestRandom:
    def test_incoming_sums_to_one(self):
        graph = apply_random_weights(star_graph(5), rng=3)
        assert graph.total_in_weight(0) == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = apply_random_weights(path_graph(6), rng=9)
        b = apply_random_weights(path_graph(6), rng=9)
        for u, v in a.edges():
            assert a.weight(u, v) == pytest.approx(b.weight(u, v))

    def test_all_weights_positive(self):
        graph = apply_random_weights(path_graph(6), rng=4)
        validate_weights(graph, require_positive=True)


class TestExplicit:
    def test_sets_given_pairs(self):
        graph = path_graph(3)
        apply_explicit_weights(graph, {(0, 1): 0.4, (1, 0): 0.6})
        assert graph.weight(0, 1) == 0.4
        assert graph.weight(1, 0) == 0.6

    def test_rejects_unknown_edge(self):
        graph = path_graph(3)
        with pytest.raises(Exception):
            apply_explicit_weights(graph, {(0, 2): 0.4})

    def test_rejects_invalid_result(self):
        graph = path_graph(3)
        with pytest.raises(WeightError):
            apply_explicit_weights(graph, {(0, 1): 0.9, (2, 1): 0.9})


class TestValidateWeights:
    def test_accepts_degree_normalized(self, triangle_graph):
        validate_weights(triangle_graph)

    def test_rejects_zero_weights_in_strict_mode(self):
        with pytest.raises(WeightError):
            validate_weights(path_graph(3), require_positive=True)

    def test_lenient_mode_allows_zero_weights(self):
        validate_weights(path_graph(3), require_positive=False)
