"""Tests for repro.graph.generators."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    power_law_configuration_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graph.traversal import is_connected


class TestErdosRenyi:
    def test_p_zero_has_no_edges(self):
        assert erdos_renyi_graph(50, 0.0, rng=1).num_edges == 0

    def test_p_one_is_complete(self):
        graph = erdos_renyi_graph(10, 1.0, rng=1)
        assert graph.num_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        graph = erdos_renyi_graph(n, p, rng=5)
        expected = p * n * (n - 1) / 2
        assert 0.7 * expected < graph.num_edges < 1.3 * expected

    def test_deterministic_given_seed(self):
        a = erdos_renyi_graph(60, 0.1, rng=42)
        b = erdos_renyi_graph(60, 0.1, rng=42)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_no_self_loops(self):
        graph = erdos_renyi_graph(40, 0.2, rng=3)
        assert all(u != v for u, v in graph.edges())

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5, rng=1)


class TestBarabasiAlbert:
    def test_node_count(self):
        assert barabasi_albert_graph(100, 3, rng=1).num_nodes == 100

    def test_edge_count(self):
        # The seed star contributes m edges; each of the remaining n-m-1
        # nodes contributes exactly m edges.
        n, m = 100, 3
        graph = barabasi_albert_graph(n, m, rng=1)
        assert graph.num_edges == m + (n - m - 1) * m

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(80, 2, rng=2))

    def test_hub_emerges(self):
        graph = barabasi_albert_graph(300, 2, rng=3)
        max_degree = max(graph.degree(node) for node in graph.nodes())
        assert max_degree > 10  # heavy tail: some node far exceeds the mean of ~4

    def test_m_must_be_smaller_than_n(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5, rng=1)

    def test_deterministic_given_seed(self):
        a = barabasi_albert_graph(50, 2, rng=9)
        b = barabasi_albert_graph(50, 2, rng=9)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))


class TestWattsStrogatz:
    def test_zero_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(20, 4, 0.0, rng=1)
        assert graph.num_edges == 20 * 2
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(30, 4, 0.5, rng=2)
        assert graph.num_edges == 30 * 2

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(20, 3, 0.1, rng=1)

    def test_k_must_be_below_n(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(6, 6, 0.1, rng=1)


class TestPowerLawConfiguration:
    def test_node_count(self):
        assert power_law_configuration_graph(150, rng=1).num_nodes == 150

    def test_min_degree_influences_density(self):
        sparse = power_law_configuration_graph(200, min_degree=1, rng=2)
        dense = power_law_configuration_graph(200, min_degree=4, rng=2)
        assert dense.num_edges > sparse.num_edges

    def test_no_self_loops_or_duplicates(self):
        graph = power_law_configuration_graph(100, min_degree=2, rng=3)
        seen = set()
        for u, v in graph.edges():
            assert u != v
            key = frozenset({u, v})
            assert key not in seen
            seen.add(key)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            power_law_configuration_graph(50, exponent=0.9, rng=1)


class TestForestFire:
    def test_connected(self):
        assert is_connected(forest_fire_graph(80, 0.35, rng=4))

    def test_node_count(self):
        assert forest_fire_graph(60, 0.3, rng=1).num_nodes == 60

    def test_higher_forward_probability_gives_denser_graph(self):
        sparse = forest_fire_graph(120, 0.1, rng=5)
        dense = forest_fire_graph(120, 0.5, rng=5)
        assert dense.num_edges > sparse.num_edges

    def test_forward_probability_one_rejected(self):
        with pytest.raises(ValueError):
            forest_fire_graph(10, 1.0, rng=1)


class TestPlantedPartition:
    def test_block_structure(self):
        graph = planted_partition_graph(2, 20, p_in=0.5, p_out=0.01, rng=6)
        within = sum(1 for u, v in graph.edges() if (u < 20) == (v < 20))
        across = graph.num_edges - within
        assert within > across

    def test_node_count(self):
        assert planted_partition_graph(3, 10, 0.3, 0.05, rng=1).num_nodes == 30


class TestDeterministicTopologies:
    def test_complete(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert all(graph.degree(node) == 5 for node in graph.nodes())

    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_cycle(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(7)
        assert graph.degree(0) == 7
        assert graph.num_edges == 7

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical edges
