"""Tests for repro.graph.sampling (graph down-sampling)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import barabasi_albert_graph, path_graph
from repro.graph.metrics import average_degree
from repro.graph.sampling import bfs_sample, forest_fire_sample, random_node_sample
from repro.graph.traversal import connected_components
from repro.graph.weights import apply_degree_normalized_weights


@pytest.fixture(scope="module")
def big_graph():
    return barabasi_albert_graph(500, 4, rng=3)


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "sampler", [random_node_sample, bfs_sample, forest_fire_sample]
    )
    def test_target_size_reached(self, big_graph, sampler):
        sample = sampler(big_graph, 120, rng=1)
        assert sample.num_nodes == 120

    @pytest.mark.parametrize(
        "sampler", [random_node_sample, bfs_sample, forest_fire_sample]
    )
    def test_is_induced_subgraph(self, big_graph, sampler):
        sample = sampler(big_graph, 80, rng=2)
        for u, v in sample.edges():
            assert big_graph.has_edge(u, v)
        for node in sample.nodes():
            assert big_graph.has_node(node)

    @pytest.mark.parametrize(
        "sampler", [random_node_sample, bfs_sample, forest_fire_sample]
    )
    def test_weights_reset(self, big_graph, sampler):
        weighted = apply_degree_normalized_weights(big_graph.copy())
        sample = sampler(weighted, 60, rng=3)
        u, v = next(iter(sample.edges()))
        assert sample.weight(u, v) == 0.0
        # Re-applying a scheme makes it usable by the friending model.
        apply_degree_normalized_weights(sample)
        sample.validate(require_positive_weights=True)

    @pytest.mark.parametrize(
        "sampler", [random_node_sample, bfs_sample, forest_fire_sample]
    )
    def test_oversized_target_rejected(self, big_graph, sampler):
        with pytest.raises(GraphError):
            sampler(big_graph, big_graph.num_nodes + 1, rng=4)

    @pytest.mark.parametrize(
        "sampler", [random_node_sample, bfs_sample, forest_fire_sample]
    )
    def test_deterministic_given_seed(self, big_graph, sampler):
        a = sampler(big_graph, 50, rng=7)
        b = sampler(big_graph, 50, rng=7)
        assert set(a.nodes()) == set(b.nodes())
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))


class TestSamplerSpecifics:
    def test_random_node_sample_whole_graph(self, big_graph):
        sample = random_node_sample(big_graph, big_graph.num_nodes, rng=1)
        assert sample.num_edges == big_graph.num_edges

    def test_bfs_sample_is_connected_when_ball_suffices(self, big_graph):
        sample = bfs_sample(big_graph, 100, seed_node=0, rng=1)
        components = connected_components(sample)
        assert len(components[0]) == 100  # BA graphs are connected

    def test_bfs_sample_unknown_seed(self, big_graph):
        with pytest.raises(GraphError):
            bfs_sample(big_graph, 10, seed_node=10**9)

    def test_bfs_sample_crosses_components_when_needed(self):
        graph = path_graph(4)
        graph.add_edge(10, 11)  # second component
        sample = bfs_sample(graph, 6, seed_node=0, rng=2)
        assert sample.num_nodes == 6

    def test_forest_fire_preserves_degree_better_than_random(self, big_graph):
        """The classic motivation: forest fire keeps the sample denser."""
        fire = forest_fire_sample(big_graph, 100, forward_probability=0.7, rng=5)
        random_sample = random_node_sample(big_graph, 100, rng=5)
        assert average_degree(fire) > average_degree(random_sample)

    def test_forest_fire_invalid_probability(self, big_graph):
        with pytest.raises(ValueError):
            forest_fire_sample(big_graph, 10, forward_probability=1.0)
