"""Tests for the streaming snapshot compiler (repro.graph.stream_compiler).

The compiler's contract is byte-identity: streaming an edge list straight
to disk must produce the very same snapshot -- every column file, the
digest, the meta -- as loading the file into a ``SocialGraph``, compiling
it and saving (the reference route), for every weight scheme.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.exceptions import GraphFormatError, SnapshotFormatError
from repro.graph.compiled import SNAPSHOT_COLUMNS, CompiledGraph, compile_graph
from repro.graph.io import read_snap_graph
from repro.graph.stream_compiler import (
    WEIGHT_SCHEMES,
    StreamCompileResult,
    compile_edge_list,
)
from repro.graph.weights import apply_degree_normalized_weights, apply_uniform_weights

SEED = 9091


def _write_edges(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def messy_edge_list(tmp_path):
    """An edge list with comments, blanks, self-loops and duplicates."""
    import random

    rng = random.Random(SEED)
    lines = ["# messy synthetic graph", ""]
    edges = set()
    while len(edges) < 150:
        edges.add((rng.randrange(40), rng.randrange(40)))
    for u, v in sorted(edges):
        lines.append(f"{u}\t{v}")
    lines.append("5 5")        # self-loop, skipped
    lines.append("1 2 extra")  # extra tokens ignored
    lines.append("2 1")        # duplicate (reversed), skipped
    return _write_edges(tmp_path / "messy.txt", lines)


def _reference_snapshot(edge_list, out_dir, weights, uniform_weight=0.1):
    """The in-memory route: read, weight, compile, save."""
    graph = read_snap_graph(edge_list)
    if weights == "degree":
        graph = apply_degree_normalized_weights(graph)
    else:
        graph = apply_uniform_weights(graph, weight=uniform_weight, normalize=True)
    return compile_graph(graph).save(out_dir, weights=weights)


class TestByteIdentity:
    @pytest.mark.parametrize("weights", WEIGHT_SCHEMES)
    def test_every_column_matches_inmemory_route(self, messy_edge_list, tmp_path, weights):
        streamed = compile_edge_list(
            messy_edge_list, tmp_path / "streamed", weights=weights
        )
        reference = _reference_snapshot(messy_edge_list, tmp_path / "reference", weights)
        for column in SNAPSHOT_COLUMNS:
            left = (streamed.directory / f"{column}.npy").read_bytes()
            right = (reference / f"{column}.npy").read_bytes()
            assert left == right, f"column {column} diverged from the in-memory route"
        assert streamed.digest == CompiledGraph.open(reference).csr_digest()

    def test_chunk_size_does_not_change_output(self, messy_edge_list, tmp_path):
        small = compile_edge_list(messy_edge_list, tmp_path / "small", chunk_edges=7)
        large = compile_edge_list(messy_edge_list, tmp_path / "large", chunk_edges=1 << 16)
        assert small.digest == large.digest
        for column in SNAPSHOT_COLUMNS:
            assert (small.directory / f"{column}.npy").read_bytes() == (
                large.directory / f"{column}.npy"
            ).read_bytes()

    def test_counts_and_result_fields(self, messy_edge_list, tmp_path):
        result = compile_edge_list(messy_edge_list, tmp_path / "snap")
        assert isinstance(result, StreamCompileResult)
        graph = apply_degree_normalized_weights(read_snap_graph(messy_edge_list))
        assert result.num_nodes == graph.num_nodes
        assert result.num_edges == graph.num_edges
        # The random pair stream produces natural self-loops/duplicates on
        # top of the ones planted explicitly.
        assert result.self_loops_skipped >= 1
        assert result.duplicates_skipped >= 1

    def test_sampling_matches_edge_list_route(self, messy_edge_list, tmp_path):
        from repro.diffusion.engine import create_engine

        result = compile_edge_list(messy_edge_list, tmp_path / "snap")
        mapped = CompiledGraph.open(result.directory)
        graph = apply_degree_normalized_weights(read_snap_graph(messy_edge_list))
        source, target = 0, max(graph.node_list())
        stop_set = graph.neighbor_set(source)
        assert create_engine(mapped, "python").sample_paths(
            target, stop_set, 200, rng=SEED
        ) == create_engine(graph, "python").sample_paths(target, stop_set, 200, rng=SEED)


class TestSources:
    def test_callable_source(self, tmp_path):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        result = compile_edge_list(lambda: iter(edges), tmp_path / "snap")
        assert result.num_nodes == 4 and result.num_edges == 5

    def test_chunked_array_source(self, tmp_path):
        def factory():
            u = np.arange(0, 30, dtype=np.int64)
            yield u, (u + 1) % 30

        result = compile_edge_list(factory, tmp_path / "snap", dedup=False)
        assert result.num_nodes == 30 and result.num_edges == 30

    def test_non_replayable_source_is_caught(self, tmp_path):
        calls = []

        def factory():
            calls.append(None)
            if len(calls) == 1:
                return iter([(0, 1), (1, 2), (2, 3)])
            return iter([(0, 1), (0, 3), (1, 3)])  # different second pass

        with pytest.raises((SnapshotFormatError, GraphFormatError)):
            compile_edge_list(factory, tmp_path / "snap")

    def test_empty_input(self, tmp_path):
        edge_list = _write_edges(tmp_path / "empty.txt", ["# nothing here"])
        result = compile_edge_list(edge_list, tmp_path / "snap")
        assert result.num_nodes == 0 and result.num_edges == 0
        mapped = CompiledGraph.open(result.directory)
        assert mapped.num_nodes == 0 and list(mapped.nodes) == []

    def test_no_dedup_counts_multiedges(self, tmp_path):
        edge_list = _write_edges(tmp_path / "dups.txt", ["0 1", "1 0", "1 2"])
        deduped = compile_edge_list(edge_list, tmp_path / "deduped")
        assert deduped.num_edges == 2 and deduped.duplicates_skipped == 1
        raw = compile_edge_list(edge_list, tmp_path / "raw", dedup=False)
        assert raw.num_edges == 3 and raw.duplicates_skipped == 0


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="no-such"):
            compile_edge_list(tmp_path / "no-such.txt", tmp_path / "snap")

    def test_short_line_names_position(self, tmp_path):
        edge_list = _write_edges(tmp_path / "bad.txt", ["0 1", "just-one-token"])
        with pytest.raises(GraphFormatError, match="line 2"):
            compile_edge_list(edge_list, tmp_path / "snap")

    def test_non_integer_ids_rejected(self, tmp_path):
        edge_list = _write_edges(tmp_path / "bad.txt", ["a b"])
        with pytest.raises(GraphFormatError):
            compile_edge_list(edge_list, tmp_path / "snap")

    def test_stale_meta_removed_before_compile(self, tmp_path, messy_edge_list):
        out_dir = tmp_path / "snap"
        compile_edge_list(messy_edge_list, out_dir)
        # A failed recompile must not leave the old meta claiming validity.
        bad = _write_edges(tmp_path / "bad.txt", ["0 1", "broken"])
        with pytest.raises(GraphFormatError):
            compile_edge_list(bad, out_dir)
        with pytest.raises(SnapshotFormatError):
            CompiledGraph.open(out_dir)

    def test_invalid_weight_scheme(self, tmp_path, messy_edge_list):
        with pytest.raises(ValueError, match="weight"):
            compile_edge_list(messy_edge_list, tmp_path / "snap", weights="exotic")
