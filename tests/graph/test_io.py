"""Tests for repro.graph.io."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.generators import barabasi_albert_graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    read_edge_list,
    read_snap_graph,
    save_graph_json,
    write_edge_list,
)
from repro.graph.weights import apply_degree_normalized_weights


SNAP_SAMPLE = """\
# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 5 Edges: 5
0\t1
1\t2
2\t3
3\t0
0\t2
"""


class TestReadEdgeList:
    def test_parses_snap_sample(self):
        graph = read_edge_list(SNAP_SAMPLE.splitlines())
        assert graph.num_nodes == 4
        assert graph.num_edges == 5

    def test_skips_comments_and_blank_lines(self):
        graph = read_edge_list(["# comment", "", "1 2", "   ", "2 3"])
        assert graph.num_edges == 2

    def test_skips_self_loops(self):
        graph = read_edge_list(["1 1", "1 2"])
        assert graph.num_edges == 1

    def test_collapses_duplicate_edges(self):
        graph = read_edge_list(["1 2", "2 1", "1 2"])
        assert graph.num_edges == 1

    def test_integer_node_ids(self):
        graph = read_edge_list(["10 20"])
        assert graph.has_node(10) and graph.has_node(20)

    def test_string_node_ids(self):
        graph = read_edge_list(["alice bob"])
        assert graph.has_edge("alice", "bob")

    def test_extra_columns_ignored(self):
        graph = read_edge_list(["1 2 1234567890"])
        assert graph.has_edge(1, 2)

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(["justonetoken"])


class TestFileRoundTrips:
    def test_snap_file_round_trip(self, tmp_path):
        original = barabasi_albert_graph(40, 2, rng=3)
        path = tmp_path / "graph.txt"
        write_edge_list(original, path, header="test graph")
        loaded = read_snap_graph(path)
        assert loaded.num_nodes == original.num_nodes
        assert loaded.num_edges == original.num_edges
        assert set(map(frozenset, loaded.edges())) == set(map(frozenset, original.edges()))

    def test_snap_file_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mynetwork.txt"
        write_edge_list(barabasi_albert_graph(10, 1, rng=1), path)
        assert read_snap_graph(path).name == "mynetwork"

    def test_json_round_trip_preserves_weights(self, tmp_path):
        original = apply_degree_normalized_weights(barabasi_albert_graph(30, 2, rng=5))
        path = tmp_path / "graph.json"
        save_graph_json(original, path)
        loaded = load_graph_json(path)
        assert loaded.num_edges == original.num_edges
        for u, v in original.edges():
            assert loaded.weight(u, v) == pytest.approx(original.weight(u, v))
            assert loaded.weight(v, u) == pytest.approx(original.weight(v, u))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json at all", encoding="utf-8")
        with pytest.raises(GraphFormatError):
            load_graph_json(path)


class TestDictConversion:
    def test_round_trip(self):
        original = apply_degree_normalized_weights(barabasi_albert_graph(20, 2, rng=7))
        rebuilt = graph_from_dict(graph_to_dict(original))
        assert rebuilt.num_nodes == original.num_nodes
        assert rebuilt.num_edges == original.num_edges

    def test_name_preserved(self):
        original = barabasi_albert_graph(10, 1, rng=1, name="named")
        assert graph_from_dict(graph_to_dict(original)).name == "named"

    def test_malformed_payload_rejected(self):
        with pytest.raises(GraphFormatError):
            graph_from_dict({"nodes": [1, 2]})  # missing edges key
