"""Equivalence and property tests for the batch sampling engines.

The shared suite runs against every engine available in the environment
(the numpy engine is exercised only when numpy is importable, so the
no-numpy CI leg degrades to the pure-Python engine cleanly).
"""

from __future__ import annotations

import random

import pytest

from repro.core.parameters import SamplePolicy
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, run_raf
from repro.diffusion.engine import (
    ENGINE_NAMES,
    PythonEngine,
    available_engines,
    collect_type1_paths,
    create_engine,
    default_engine,
    numpy_available,
)
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.diffusion.realization import forward_process, sample_realization
from repro.exceptions import EngineError, EstimationError, NodeNotFoundError
from repro.graph.compiled import compile_graph

ENGINES = list(available_engines())


def _legacy_sample_target_path(graph, target, stop_set, generator):
    """The historical dict-based sampler, kept as the bit-compat reference."""
    traced = {target}
    current = target
    while True:
        draw = generator.random()
        cumulative = 0.0
        parent = None
        for friend, weight in dict(graph.in_weights(current)).items():
            cumulative += weight
            if draw < cumulative:
                parent = friend
                break
        if parent is None or parent in traced:
            return frozenset(traced), False, None
        if parent in stop_set:
            return frozenset(traced), True, parent
        traced.add(parent)
        current = parent


@pytest.mark.parametrize("engine_name", ENGINES)
class TestEngineProperties:
    def test_count_and_target_membership(self, small_ba_graph, engine_name):
        engine = create_engine(small_ba_graph, engine_name)
        stop = small_ba_graph.neighbor_set(0)
        paths = engine.sample_paths(50, stop, 40, rng=1)
        assert len(paths) == 40
        for path in paths:
            assert 50 in path.nodes
            assert not (path.nodes & stop)

    def test_type1_anchor_is_a_stop_node(self, small_ba_graph, engine_name):
        engine = create_engine(small_ba_graph, engine_name)
        stop = small_ba_graph.neighbor_set(0)
        paths = engine.sample_paths(50, stop, 200, rng=2)
        type1 = [path for path in paths if path.is_type1]
        assert type1, "expected at least one type-1 path"
        for path in type1:
            assert path.anchor in stop
        for path in paths:
            if not path.is_type1:
                assert path.anchor is None

    def test_deterministic_per_seed(self, small_ba_graph, engine_name):
        engine = create_engine(small_ba_graph, engine_name)
        stop = small_ba_graph.neighbor_set(0)
        first = engine.sample_paths(30, stop, 25, rng=7)
        second = engine.sample_paths(30, stop, 25, rng=7)
        assert [(p.nodes, p.is_type1, p.anchor) for p in first] == [
            (p.nodes, p.is_type1, p.anchor) for p in second
        ]

    def test_chain_type1_rate_matches_theory(self, chain_graph, engine_name):
        # Backward walk from t: t picks b (probability 1), b picks a with
        # probability 1/2 (type-1) or t with probability 1/2 (cycle, type-0).
        engine = create_engine(chain_graph, engine_name)
        paths = engine.sample_paths("t", {"a"}, 3000, rng=11)
        rate = sum(path.is_type1 for path in paths) / 3000
        assert rate == pytest.approx(0.5, abs=0.03)

    def test_matches_full_realization_marginal(self, diamond_graph, engine_name):
        """Engine type-1 frequency equals the full-realization one (Remark 3)."""
        engine = create_engine(diamond_graph, engine_name)
        stop = diamond_graph.neighbor_set("s")
        trials = 3000
        engine_rate = sum(
            path.is_type1 for path in engine.sample_paths("t", stop, trials, rng=13)
        ) / trials
        full_hits = 0
        for seed in range(trials):
            realization = sample_realization(diamond_graph, rng=20_000 + seed)
            outcome = forward_process(
                diamond_graph, "s", realization, frozenset(diamond_graph.nodes()), target="t"
            )
            full_hits += outcome.success
        assert engine_rate == pytest.approx(full_hits / trials, abs=0.04)

    def test_lemma1_covered_rate_equals_forward_process(self, medium_ba_graph, engine_name):
        """Lemma 1/2 on the compiled backend: covered-trace rate == f(I)."""
        graph = medium_ba_graph
        source, target = 0, 150
        candidates = [node for node in graph.nodes() if node != source]
        invitation = frozenset(random.Random(3).sample(candidates, 120)) | {target}
        reverse = estimate_acceptance_probability(
            graph, source, target, invitation, num_samples=4000, rng=21,
            engine=create_engine(graph, engine_name),
        ).probability
        forward = estimate_acceptance_probability(
            graph, source, target, invitation, num_samples=4000, rng=22,
        ).probability
        assert reverse == pytest.approx(forward, abs=0.045)

    def test_unknown_target_rejected(self, triangle_graph, engine_name):
        engine = create_engine(triangle_graph, engine_name)
        with pytest.raises(NodeNotFoundError):
            engine.sample_paths("ghost", {"a"}, 1)

    def test_zero_count(self, triangle_graph, engine_name):
        engine = create_engine(triangle_graph, engine_name)
        assert engine.sample_paths("a", {"b"}, 0, rng=1) == []

    def test_negative_count_rejected(self, triangle_graph, engine_name):
        engine = create_engine(triangle_graph, engine_name)
        with pytest.raises(ValueError):
            engine.sample_paths("a", {"b"}, -1)

    def test_stop_set_with_unknown_nodes(self, chain_graph, engine_name):
        engine = create_engine(chain_graph, engine_name)
        paths = engine.sample_paths("t", {"a", "ghost"}, 50, rng=5)
        assert len(paths) == 50

    def test_collect_type1_paths_chunked(self, small_ba_graph, engine_name):
        engine = create_engine(small_ba_graph, engine_name)
        stop = small_ba_graph.neighbor_set(0)
        paths, count = collect_type1_paths(engine, 50, stop, 500, rng=9, chunk_size=64)
        assert count == len(paths)
        assert all(path.is_type1 for path in paths)
        # Chunking must not change the draw: one big batch gives the same
        # type-1 yield for the same seed on the deterministic python engine.
        if engine_name == "python":
            whole = [p for p in engine.sample_paths(50, stop, 500, rng=9) if p.is_type1]
            assert [p.nodes for p in paths] == [p.nodes for p in whole]


class TestPythonEngineBitCompat:
    """The python engine reproduces the historical dict sampler exactly."""

    def test_matches_legacy_reference(self, small_ba_graph):
        engine = PythonEngine(small_ba_graph)
        stop = small_ba_graph.neighbor_set(0)
        for seed in range(30):
            expected = _legacy_sample_target_path(
                small_ba_graph, 50, stop, random.Random(seed)
            )
            path = engine.sample_path(50, stop, rng=seed)
            assert (path.nodes, path.is_type1, path.anchor) == expected

    def test_generator_draws_one_path_per_next(self, small_ba_graph):
        """Partial consumption of sample_target_paths leaves the shared rng
        exactly where one-at-a-time sampling would (the historical stream
        contract)."""
        from repro.diffusion.reverse_sampling import sample_target_path, sample_target_paths

        stop = small_ba_graph.neighbor_set(0)
        shared = random.Random(17)
        first = next(iter(sample_target_paths(small_ba_graph, 30, stop, 100, rng=shared)))
        after_generator = shared.random()
        reference = random.Random(17)
        expected = sample_target_path(small_ba_graph, 30, stop, rng=reference)
        assert first.nodes == expected.nodes
        assert after_generator == reference.random()

    def test_batch_consumes_stream_like_sequential(self, small_ba_graph):
        stop = small_ba_graph.neighbor_set(0)
        engine = PythonEngine(small_ba_graph)
        batched = engine.sample_paths(30, stop, 20, rng=5)
        generator = random.Random(5)
        sequential = [engine.sample_path(30, stop, rng=generator) for _ in range(20)]
        assert [p.nodes for p in batched] == [p.nodes for p in sequential]


@pytest.mark.skipif(not numpy_available(), reason="numpy is not installed")
class TestCrossEngineConsistency:
    """python and numpy engines are distributionally interchangeable."""

    def test_type1_rates_agree(self, medium_ba_graph):
        stop = medium_ba_graph.neighbor_set(0)
        trials = 4000
        rates = {}
        for name in ("python", "numpy"):
            engine = create_engine(medium_ba_graph, name)
            paths = engine.sample_paths(150, stop, trials, rng=31)
            rates[name] = sum(path.is_type1 for path in paths) / trials
        assert rates["python"] == pytest.approx(rates["numpy"], abs=0.04)

    def test_mean_trace_lengths_agree(self, medium_ba_graph):
        stop = medium_ba_graph.neighbor_set(0)
        trials = 4000
        means = {}
        for name in ("python", "numpy"):
            engine = create_engine(medium_ba_graph, name)
            paths = engine.sample_paths(150, stop, trials, rng=33)
            means[name] = sum(len(path) for path in paths) / trials
        assert means["python"] == pytest.approx(means["numpy"], rel=0.1)

    def test_run_raf_numpy_engine_deterministic_and_valid(self, medium_ba_graph, rng):
        from tests.conftest import find_test_pair

        source, target = find_test_pair(medium_ba_graph, rng, min_distance=3)
        problem = ActiveFriendingProblem(medium_ba_graph, source, target, alpha=0.2)
        config = RAFConfig(
            sample_policy=SamplePolicy.FIXED, fixed_realizations=2000,
            pmax_max_samples=30_000, epsilon=0.05, engine="numpy",
        )
        first = run_raf(problem, config, rng=41)
        second = run_raf(problem, config, rng=41)
        assert first.invitation == second.invitation
        assert first.pmax_estimate == second.pmax_estimate
        assert problem.target in first.invitation


class TestEngineSelection:
    def test_unknown_engine_rejected(self, triangle_graph):
        with pytest.raises(EngineError):
            create_engine(triangle_graph, "fortran")

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            RAFConfig(engine="fortran")

    def test_engine_names_cover_available(self):
        assert set(available_engines()) <= set(ENGINE_NAMES)
        assert "python" in available_engines()

    def test_auto_selects_an_available_backend(self, triangle_graph):
        engine = create_engine(triangle_graph, "auto")
        assert engine.name in available_engines()

    def test_default_engine_reuses_compiled_snapshot(self, triangle_graph):
        compiled = compile_graph(triangle_graph)
        engine = default_engine(triangle_graph)
        assert engine.compiled is compiled

    def test_problem_sampling_engine(self, chain_graph):
        problem = ActiveFriendingProblem(chain_graph, "s", "t", alpha=0.5)
        engine = problem.sampling_engine()
        assert engine.compiled is problem.compiled
        assert engine.name == "python"

    def test_engine_instance_for_wrong_graph_rejected(self, chain_graph, diamond_graph):
        """An engine built on graph A must not silently sample graph B."""
        foreign = create_engine(diamond_graph, "python")
        with pytest.raises(EngineError):
            estimate_acceptance_probability(
                chain_graph, "s", "t", {"b", "t"}, num_samples=10, rng=1, engine=foreign
            )

    def test_stale_engine_after_mutation_resnapshots(self, chain_graph):
        """Mutating the graph between construction and use refreshes the engine.

        The engine tracks its source graph's mutation counter, so a mutation
        in the construction-to-first-batch window re-snapshots instead of
        leaving the engine bound to the dead CSR (and resolve_engine accepts
        the refreshed engine as current).
        """
        engine = create_engine(chain_graph, "python")
        chain_graph.add_edge("a", "t", weight_uv=0.01, weight_vu=0.01)
        from repro.diffusion.engine import resolve_engine

        assert resolve_engine(chain_graph, engine) is engine
        assert engine.compiled is compile_graph(chain_graph)

    def test_engine_pinned_to_explicit_snapshot_stays_pinned(self, chain_graph):
        """An engine built on a CompiledGraph keeps that exact frozen view."""
        snapshot = compile_graph(chain_graph)
        engine = create_engine(snapshot, "python")
        chain_graph.add_edge("a", "t", weight_uv=0.01, weight_vu=0.01)
        assert engine.compiled is snapshot
        from repro.diffusion.engine import resolve_engine

        with pytest.raises(EngineError):
            resolve_engine(chain_graph, engine)


class TestReverseAcceptanceEstimator:
    def test_friend_pair_rejected(self, triangle_graph):
        with pytest.raises(EstimationError):
            estimate_acceptance_probability(
                triangle_graph, "a", "b", {"b"}, num_samples=10, rng=1, engine="python"
            )

    def test_engine_accepts_name(self, chain_graph):
        estimate = estimate_acceptance_probability(
            chain_graph, "s", "t", {"b", "t"}, num_samples=2000, rng=3, engine="python"
        )
        # Covered iff the walk is type-1 (probability 1/2) since {b, t}
        # contains every possible type-1 trace of the chain.
        assert estimate.probability == pytest.approx(0.5, abs=0.04)
        assert estimate.successes == round(estimate.probability * estimate.num_samples)


class TestStaleSnapshotRegression:
    """Regression suite for the construction-to-first-batch stale window.

    Historically an engine froze its CSR snapshot at construction time, so a
    graph mutated *between* constructing the engine and drawing its first
    batch kept sampling the dead CSR.  The engine now re-checks the graph's
    mutation counter on every batch and re-snapshots.
    """

    @pytest.mark.parametrize("name", ENGINES)
    def test_first_batch_after_mutation_uses_fresh_csr(self, name, chain_graph):
        engine = create_engine(chain_graph, name)
        # Mutate in the stale window: a strong shortcut edge b-s changes the
        # reachable topology (walks from t can now hit N_s = {a} via fewer
        # hops and b gains an extra in-neighbour, shifting every selection).
        chain_graph.add_edge("s", "b", weight_uv=0.4, weight_vu=0.4)
        stale = engine.sample_paths("t", chain_graph.neighbor_set("s"), 200, rng=99)
        fresh = create_engine(chain_graph, name).sample_paths(
            "t", chain_graph.neighbor_set("s"), 200, rng=99
        )
        assert stale == fresh
        assert engine.compiled is compile_graph(chain_graph)

    @pytest.mark.parametrize("name", ENGINES)
    def test_node_added_in_stale_window_is_sampleable(self, name, chain_graph):
        engine = create_engine(chain_graph, name)
        chain_graph.add_edge("t", "u", weight_uv=0.3, weight_vu=0.3)
        # The dead CSR does not even contain "u"; the refreshed one must.
        paths = engine.sample_paths("u", {"a"}, 50, rng=5)
        assert len(paths) == 50

    def test_unchanged_graph_keeps_the_cached_snapshot(self, chain_graph):
        engine = create_engine(chain_graph, "python")
        before = engine.compiled
        engine.sample_paths("t", {"a"}, 10, rng=1)
        assert engine.compiled is before
