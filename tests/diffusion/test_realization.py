"""Tests for repro.diffusion.realization (Def. 1, Process 2, Alg. 1)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.diffusion.realization import (
    Realization,
    forward_process,
    sample_realization,
    trace_target_path,
)
from repro.exceptions import NodeNotFoundError


class TestSampleRealization:
    def test_every_user_has_a_choice_entry(self, small_ba_graph):
        realization = sample_realization(small_ba_graph, rng=1)
        assert set(realization.choices) == set(small_ba_graph.nodes())

    def test_choice_is_friend_or_none(self, small_ba_graph):
        realization = sample_realization(small_ba_graph, rng=2)
        for node, choice in realization.choices.items():
            if choice is not None:
                assert small_ba_graph.has_edge(node, choice)

    def test_deterministic_given_seed(self, small_ba_graph):
        a = sample_realization(small_ba_graph, rng=3)
        b = sample_realization(small_ba_graph, rng=3)
        assert a.choices == b.choices

    def test_selection_frequencies_match_weights(self, chain_graph):
        """Node b picks a with probability w(a,b)=1/2, t with w(t,b)=1/2."""
        counts = Counter(sample_realization(chain_graph, rng=seed).parent("b") for seed in range(2000))
        assert counts["a"] / 2000 == pytest.approx(0.5, abs=0.05)
        assert counts["t"] / 2000 == pytest.approx(0.5, abs=0.05)

    def test_leftover_probability_selects_nobody(self):
        """A node whose incoming weights sum below 1 sometimes selects nobody."""
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph(edges=[("u", "v", 0.3, 0.3)])
        counts = Counter(
            sample_realization(graph, rng=seed).parent("v") for seed in range(2000)
        )
        assert counts[None] / 2000 == pytest.approx(0.7, abs=0.05)
        assert counts["u"] / 2000 == pytest.approx(0.3, abs=0.05)

    def test_parent_of_unknown_node(self, triangle_graph):
        realization = sample_realization(triangle_graph, rng=1)
        with pytest.raises(NodeNotFoundError):
            realization.parent("ghost")

    def test_live_edges(self):
        realization = Realization(choices={"a": "b", "b": None, "c": "b"})
        assert realization.live_edges() == frozenset({("b", "a"), ("b", "c")})

    def test_contains(self):
        realization = Realization(choices={"a": None})
        assert "a" in realization
        assert "b" not in realization


class TestForwardProcess:
    def test_chain_success_depends_on_live_edges(self, chain_graph):
        # b selected a and t selected b: the full chain is live.
        success_realization = Realization(choices={"s": None, "a": None, "b": "a", "t": "b"})
        outcome = forward_process(chain_graph, "s", success_realization, {"b", "t"}, target="t")
        assert outcome.success
        assert outcome.new_friends == frozenset({"b", "t"})

    def test_chain_failure_when_link_missing(self, chain_graph):
        broken = Realization(choices={"s": None, "a": None, "b": "t", "t": "b"})
        outcome = forward_process(chain_graph, "s", broken, {"b", "t"}, target="t")
        assert not outcome.success

    def test_uninvited_node_blocks_cascade(self, chain_graph):
        live = Realization(choices={"s": None, "a": None, "b": "a", "t": "b"})
        outcome = forward_process(chain_graph, "s", live, {"t"}, target="t")
        assert not outcome.success
        assert outcome.new_friends == frozenset()

    def test_initial_friends_present(self, diamond_graph):
        realization = sample_realization(diamond_graph, rng=4)
        outcome = forward_process(diamond_graph, "s", realization, set())
        assert frozenset({"a", "b"}) <= outcome.final_friends

    def test_unknown_source(self, triangle_graph):
        realization = sample_realization(triangle_graph, rng=1)
        with pytest.raises(NodeNotFoundError):
            forward_process(triangle_graph, "ghost", realization, set())


class TestTraceTargetPath:
    def test_live_chain_is_type1(self):
        realization = Realization(choices={"t": "b", "b": "a", "a": None})
        nodes, is_type1 = trace_target_path(realization, "t", {"a"})
        assert is_type1
        assert nodes == frozenset({"t", "b"})

    def test_dead_end_is_type0(self):
        realization = Realization(choices={"t": "b", "b": None})
        nodes, is_type1 = trace_target_path(realization, "t", {"a"})
        assert not is_type1
        assert nodes == frozenset({"t", "b"})

    def test_cycle_is_type0(self):
        realization = Realization(choices={"t": "b", "b": "c", "c": "t"})
        nodes, is_type1 = trace_target_path(realization, "t", {"a"})
        assert not is_type1
        assert nodes == frozenset({"t", "b", "c"})

    def test_target_adjacent_to_circle(self):
        realization = Realization(choices={"t": "a"})
        nodes, is_type1 = trace_target_path(realization, "t", {"a"})
        assert is_type1
        assert nodes == frozenset({"t"})

    def test_trace_never_contains_circle_members(self, small_ba_graph):
        source_friends = small_ba_graph.neighbor_set(0)
        for seed in range(30):
            realization = sample_realization(small_ba_graph, rng=seed)
            nodes, is_type1 = trace_target_path(realization, 55, source_friends)
            assert not (nodes & source_friends)
            assert 55 in nodes
