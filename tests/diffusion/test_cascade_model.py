"""Tests for repro.diffusion.cascade_model (IC extension)."""

from __future__ import annotations

import pytest

from repro.diffusion.cascade_model import estimate_cascade_probability, simulate_cascade_friending
from repro.exceptions import NodeNotFoundError


class TestSimulateCascade:
    def test_initial_friends_always_present(self, diamond_graph):
        outcome = simulate_cascade_friending(diamond_graph, "s", set(), rng=1)
        assert frozenset({"a", "b"}) <= outcome.final_friends

    def test_only_invited_users_join(self, small_ba_graph):
        invitation = frozenset(list(small_ba_graph.nodes())[20:40])
        outcome = simulate_cascade_friending(small_ba_graph, 0, invitation, rng=2)
        assert outcome.new_friends <= invitation

    def test_empty_invitation_never_succeeds(self, chain_graph):
        for seed in range(20):
            assert not simulate_cascade_friending(
                chain_graph, "s", set(), target="t", rng=seed
            ).success

    def test_unknown_source(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            simulate_cascade_friending(triangle_graph, "ghost", set())

    def test_unknown_target(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            simulate_cascade_friending(triangle_graph, "a", set(), target="ghost")

    def test_deterministic_given_seed(self, small_ba_graph):
        invitation = frozenset(list(small_ba_graph.nodes())[:15])
        a = simulate_cascade_friending(small_ba_graph, 0, invitation, target=40, rng=9)
        b = simulate_cascade_friending(small_ba_graph, 0, invitation, target=40, rng=9)
        assert a == b


class TestEstimateCascadeProbability:
    def test_chain_closed_form(self, chain_graph):
        # Under IC the chain succeeds iff the a->b trial (probability 1/2)
        # and the b->t trial (probability 1) both succeed.
        estimate = estimate_cascade_probability(
            chain_graph, "s", "t", {"b", "t"}, num_samples=4000, rng=3
        )
        assert estimate.probability == pytest.approx(0.5, abs=0.03)

    def test_probability_bounds(self, small_ba_graph):
        estimate = estimate_cascade_probability(
            small_ba_graph, 0, 45, set(small_ba_graph.nodes()), num_samples=300, rng=4
        )
        assert 0.0 <= estimate.probability <= 1.0

    def test_invalid_sample_count(self, chain_graph):
        with pytest.raises(ValueError):
            estimate_cascade_probability(chain_graph, "s", "t", {"t"}, num_samples=0)
