"""Statistical verification of the paper's core lemmas.

* Lemma 1: the LT friending process (Process 1) and the realization process
  (Process 2) produce the same acceptance probability for any invitation
  set.
* Lemma 2 / Corollary 1: the target becomes a friend under a realization iff
  the invitation set covers the backward trace ``t(g)``.

These are the correctness foundations of the whole RAF pipeline, so they are
tested on several graphs and invitation sets with enough samples to make the
comparisons statistically meaningful (tolerances are ~4 standard errors).
"""

from __future__ import annotations

import random

import pytest

from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.diffusion.realization import forward_process, sample_realization, trace_target_path
from repro.diffusion.reverse_sampling import sample_target_path
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.graph.weights import apply_degree_normalized_weights, apply_random_weights

SAMPLES = 4000
TOLERANCE = 0.045


def _realization_estimate(graph, source, target, invitation, samples, seed):
    """Estimate f(I) as the fraction of realizations whose trace is covered."""
    generator = random.Random(seed)
    source_friends = graph.neighbor_set(source)
    invitation = frozenset(invitation)
    hits = 0
    for _ in range(samples):
        path = sample_target_path(graph, target, source_friends, rng=generator)
        if path.covered_by(invitation):
            hits += 1
    return hits / samples


def _process_estimate(graph, source, target, invitation, samples, seed):
    estimate = estimate_acceptance_probability(
        graph, source, target, invitation, num_samples=samples, rng=seed
    )
    return estimate.probability


def _non_neighbor_target(graph, source, preferred):
    """Pick a target that is not the source and not already a friend of it.

    The backward-trace estimator (like the paper's Problem 1) assumes the
    pair is not already friends, so the equivalence tests only use such
    pairs.
    """
    friends = graph.neighbor_set(source)
    candidates = [
        node
        for node in graph.nodes()
        if node != source and node not in friends and graph.degree(node) > 0
    ]
    assert candidates, "test graph has no valid target"
    return preferred if preferred in candidates else candidates[-1]


@pytest.mark.parametrize(
    "graph_builder, source, preferred_target",
    [
        (lambda: apply_degree_normalized_weights(barabasi_albert_graph(40, 2, rng=3)), 0, 25),
        (lambda: apply_degree_normalized_weights(erdos_renyi_graph(40, 0.12, rng=5)), 0, 30),
        (lambda: apply_random_weights(barabasi_albert_graph(40, 2, rng=7), rng=8), 1, 33),
    ],
)
class TestLemma1Equivalence:
    """Process 1 and the covered-trace estimator agree on f(I)."""

    def test_full_invitation(self, graph_builder, source, preferred_target):
        graph = graph_builder()
        target = _non_neighbor_target(graph, source, preferred_target)
        invitation = set(graph.nodes())
        lt = _process_estimate(graph, source, target, invitation, SAMPLES, 11)
        realization = _realization_estimate(graph, source, target, invitation, SAMPLES, 12)
        assert lt == pytest.approx(realization, abs=TOLERANCE)

    def test_partial_invitation(self, graph_builder, source, preferred_target):
        graph = graph_builder()
        target = _non_neighbor_target(graph, source, preferred_target)
        generator = random.Random(21)
        candidates = [node for node in graph.nodes() if node != source]
        invitation = set(generator.sample(candidates, len(candidates) // 2))
        invitation.add(target)
        lt = _process_estimate(graph, source, target, invitation, SAMPLES, 13)
        realization = _realization_estimate(graph, source, target, invitation, SAMPLES, 14)
        assert lt == pytest.approx(realization, abs=TOLERANCE)

    def test_small_invitation(self, graph_builder, source, preferred_target):
        graph = graph_builder()
        target = _non_neighbor_target(graph, source, preferred_target)
        invitation = {target} | set(graph.neighbor_set(target))
        lt = _process_estimate(graph, source, target, invitation, SAMPLES, 15)
        realization = _realization_estimate(graph, source, target, invitation, SAMPLES, 16)
        assert lt == pytest.approx(realization, abs=TOLERANCE)


class TestLemma2Covering:
    """Under a fixed realization, success <=> the trace is covered."""

    @pytest.mark.parametrize("seed", range(40))
    def test_forward_process_agrees_with_trace_covering(self, medium_ba_graph, seed):
        graph = medium_ba_graph
        source = 0
        target = _non_neighbor_target(graph, source, 150)
        generator = random.Random(seed)
        candidates = [node for node in graph.nodes() if node != source]
        invitation = frozenset(generator.sample(candidates, 60)) | {target}
        realization = sample_realization(graph, rng=seed)
        outcome = forward_process(graph, source, realization, invitation, target=target)
        nodes, is_type1 = trace_target_path(realization, target, graph.neighbor_set(source))
        covered = is_type1 and nodes <= invitation
        assert outcome.success == covered

    def test_full_invitation_success_iff_type1(self, medium_ba_graph):
        graph = medium_ba_graph
        source = 0
        target = _non_neighbor_target(graph, source, 180)
        invitation = frozenset(graph.nodes())
        for seed in range(40):
            realization = sample_realization(graph, rng=seed)
            outcome = forward_process(graph, source, realization, invitation, target=target)
            _, is_type1 = trace_target_path(realization, target, graph.neighbor_set(source))
            assert outcome.success == is_type1
