"""Tests for the columnar PathBatch representation (repro/diffusion/path_batch).

Three layers of guarantees:

* **Round-trip fidelity** (property-based, derandomized): batch views
  materialize exactly the :class:`TargetPath` objects they were built
  from, and every columnar reduction (type indicators, Lemma-2 coverage,
  type-1 selection) agrees with the object-path computation.
* **Kernel equivalence**: the vectorized engine's columnar kernel is
  draw-for-draw identical to the retained per-walker reference kernel
  (``sample_paths_reference``) -- the bit-identity discipline that keeps
  golden records and pool streams stable across the columnar rewrite.
* **Wire/disk formats**: pickling ships detached columns that re-attach
  losslessly; ``.npz`` blobs round-trip.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diffusion.engine import (
    PythonEngine,
    available_engines,
    create_engine,
)
from repro.diffusion.path_batch import PathBatch, PathStore, TargetPath
from repro.graph.compiled import compile_graph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

NUMPY = "numpy" in available_engines()
requires_numpy = pytest.mark.skipif(not NUMPY, reason="requires numpy")


@pytest.fixture(scope="module")
def graph():
    return apply_degree_normalized_weights(barabasi_albert_graph(250, 4, rng=11))


@pytest.fixture(scope="module")
def setting(graph):
    return graph, 200, graph.neighbor_set(0)


class TestRoundTrip:
    """Batch views must reproduce the objects they were built from exactly."""

    @given(seed=st.integers(min_value=0, max_value=2**31), count=st.integers(0, 300))
    @SETTINGS
    def test_from_paths_round_trips(self, graph, seed, count):
        engine = PythonEngine(graph)
        stop = graph.neighbor_set(0)
        paths = engine.sample_paths(200, stop, count, rng=seed)
        batch = PathBatch.from_paths(paths, engine.compiled)
        assert len(batch) == count
        assert batch.to_paths() == paths
        assert list(batch) == paths
        assert batch.type1_bytes() == bytes(1 if p.is_type1 else 0 for p in paths)
        assert batch.type1_count() == sum(p.is_type1 for p in paths)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        lo=st.integers(0, 150),
        width=st.integers(0, 150),
    )
    @SETTINGS
    def test_slices_and_single_paths(self, graph, seed, lo, width):
        engine = PythonEngine(graph)
        stop = graph.neighbor_set(0)
        paths = engine.sample_paths(200, stop, 300, rng=seed)
        batch = PathBatch.from_paths(paths, engine.compiled)
        hi = lo + width
        assert batch.paths_slice(lo, hi) == paths[lo:hi]
        assert batch.type1_bytes(lo, hi) == bytes(1 if p.is_type1 else 0 for p in paths[lo:hi])
        assert batch.type1_paths_slice(lo, hi) == [p for p in paths[lo:hi] if p.is_type1]
        if width:
            assert batch.path(lo) == paths[lo]

    @given(seed=st.integers(min_value=0, max_value=2**31), invite_bits=st.integers(0, 2**20))
    @SETTINGS
    def test_covered_bytes_matches_covered_by(self, graph, seed, invite_bits):
        engine = PythonEngine(graph)
        stop = graph.neighbor_set(0)
        nodes = graph.node_list()
        # A deterministic pseudo-random invitation derived from the bits.
        invited = frozenset(
            node for i, node in enumerate(nodes) if (invite_bits >> (i % 20)) & 1 or i % 7 == 0
        )
        paths = engine.sample_paths(200, stop, 200, rng=seed)
        batch = PathBatch.from_paths(paths, engine.compiled)
        assert batch.covered_bytes(invited) == bytes(
            1 if p.covered_by(invited) else 0 for p in paths
        )

    def test_select_type1(self, setting):
        graph, target, stop = setting
        engine = PythonEngine(graph)
        paths = engine.sample_paths(target, stop, 400, rng=5)
        batch = PathBatch.from_paths(paths, engine.compiled)
        selected = batch.select_type1()
        expected = [p for p in paths if p.is_type1]
        assert selected.to_paths() == expected
        assert bytes(selected.type1_bytes()) == b"\x01" * len(expected)

    def test_empty_batch(self, graph):
        batch = PathBatch.empty(compile_graph(graph))
        assert len(batch) == 0
        assert batch.to_paths() == []
        assert batch.type1_bytes() == b""
        assert batch.covered_bytes(frozenset()) == b""

    def test_out_of_range_slice_raises(self, setting):
        graph, target, stop = setting
        engine = PythonEngine(graph)
        batch = engine.sample_path_batch(target, stop, 10, rng=1)
        with pytest.raises(IndexError):
            batch.paths_slice(0, 11)
        with pytest.raises(IndexError):
            batch.paths_slice(-1, 5)


class TestGenericEngineBatches:
    @pytest.mark.parametrize("name", available_engines())
    def test_sample_path_batch_equals_sample_paths(self, setting, name):
        graph, target, stop = setting
        engine = create_engine(graph, name)
        batch = engine.sample_path_batch(target, stop, 500, rng=17)
        assert batch.to_paths() == engine.sample_paths(target, stop, 500, rng=17)


@requires_numpy
class TestColumnarKernelEquivalence:
    """The array-native kernel vs the retained per-walker reference kernel."""

    @given(seed=st.integers(min_value=0, max_value=2**31), count=st.integers(0, 400))
    @SETTINGS
    def test_draw_for_draw_identical(self, graph, seed, count):
        engine = create_engine(graph, "numpy")
        stop = graph.neighbor_set(0)
        batch = engine.sample_path_batch(200, stop, count, rng=seed)
        reference = engine.sample_paths_reference(200, stop, count, rng=seed)
        assert batch.to_paths() == reference

    def test_target_inside_stop_set(self, graph):
        # A walk returning to the target must count as a cycle (type-0)
        # even when the target sits in the stop set: revisit checks take
        # precedence over stop hits, exactly as in the per-walker kernels.
        engine = create_engine(graph, "numpy")
        stop = frozenset(graph.neighbor_set(0)) | {200}
        for seed in range(5):
            assert (
                engine.sample_path_batch(200, stop, 300, rng=seed).to_paths()
                == engine.sample_paths_reference(200, stop, 300, rng=seed)
            )

    def test_empty_stop_set_and_isolated_target(self):
        graph = apply_degree_normalized_weights(barabasi_albert_graph(60, 2, rng=3))
        graph.add_node("loner")
        engine = create_engine(graph, "numpy")
        assert (
            engine.sample_path_batch(40, frozenset(), 200, rng=2).to_paths()
            == engine.sample_paths_reference(40, frozenset(), 200, rng=2)
        )
        lone = engine.sample_path_batch("loner", graph.neighbor_set(0), 50, rng=2)
        assert lone.to_paths() == engine.sample_paths_reference(
            "loner", graph.neighbor_set(0), 50, rng=2
        )

    def test_edgeless_graph(self):
        graph = SocialGraph.from_edges([])
        graph.add_node("x")
        graph.add_node("y")
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch("x", {"y"}, 4, rng=1)
        assert batch.to_paths() == engine.sample_paths_reference("x", {"y"}, 4, rng=1)
        assert batch.to_paths() == [TargetPath(nodes=frozenset({"x"}), is_type1=False)] * 4

    def test_memory_fallback_is_bit_identical(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "numpy")
        want = engine.sample_path_batch(target, stop, 600, rng=9).to_paths()
        original = type(engine).STAMP_CELL_LIMIT
        try:
            type(engine).STAMP_CELL_LIMIT = 1  # force the reference fallback
            assert engine.sample_path_batch(target, stop, 600, rng=9).to_paths() == want
            assert engine.sample_paths(target, stop, 600, rng=9) == want
        finally:
            type(engine).STAMP_CELL_LIMIT = original

    def test_epoch_recycling_stays_consistent(self, setting):
        # 300 consecutive batches wrap the uint8 epoch counter at least
        # once; every batch must keep matching the reference kernel.
        graph, target, stop = setting
        engine = create_engine(graph, "numpy")
        for seed in range(300):
            assert (
                engine.sample_path_batch(target, stop, 5, rng=seed).to_paths()
                == engine.sample_paths_reference(target, stop, 5, rng=seed)
            )

    def test_rng_stream_consumed_identically(self, setting):
        # Both kernels must take exactly one 64-bit draw from the caller's
        # generator, so downstream consumers of the same Random see the
        # same continuation.
        graph, target, stop = setting
        engine = create_engine(graph, "numpy")
        a, b = random.Random(42), random.Random(42)
        engine.sample_path_batch(target, stop, 100, rng=a)
        engine.sample_paths_reference(target, stop, 100, rng=b)
        assert a.getrandbits(64) == b.getrandbits(64)


@requires_numpy
class TestWireFormats:
    def test_pickle_detaches_and_reattaches(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, stop, 200, rng=3)
        shipped = pickle.loads(pickle.dumps(batch))
        assert shipped.graph is None
        with pytest.raises(RuntimeError):
            shipped.to_paths()
        assert shipped.attach(engine.compiled).to_paths() == batch.to_paths()

    def test_npz_round_trip(self, setting, tmp_path):
        graph, target, stop = setting
        engine = create_engine(graph, "numpy")
        batch = engine.sample_path_batch(target, stop, 200, rng=3)
        blob = tmp_path / "batch.npz"
        batch.save_npz(blob)
        loaded = PathBatch.load_npz(blob, graph=engine.compiled)
        assert loaded.to_paths() == batch.to_paths()
        assert loaded.type1_bytes() == batch.type1_bytes()

    def test_concat(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "numpy")
        parts = [
            engine.sample_path_batch(target, stop, n, rng=seed)
            for seed, n in ((1, 50), (2, 0), (3, 70))
        ]
        merged = PathBatch.concat(parts, engine.compiled)
        assert merged.to_paths() == [p for part in parts for p in part.to_paths()]


class TestPathStore:
    @pytest.mark.parametrize("name", available_engines())
    def test_cross_chunk_reads(self, setting, name):
        graph, target, stop = setting
        engine = create_engine(graph, name)
        store = PathStore()
        everything: list[TargetPath] = []
        for seed, count in ((1, 64), (2, 64), (3, 32)):
            if getattr(engine, "native_batches", False):
                chunk = engine.sample_path_batch(target, stop, count, rng=seed)
                store.append(chunk)
                everything.extend(chunk.to_paths())
            else:
                chunk = engine.sample_paths(target, stop, count, rng=seed)
                store.append(chunk)
                everything.extend(chunk)
        assert len(store) == 160
        invited = frozenset(graph.node_list()[:80])
        for lo, hi in ((0, 160), (10, 150), (64, 128), (63, 65), (40, 40)):
            assert store.slice(lo, hi) == everything[lo:hi]
            assert store.type1_bytes(lo, hi) == bytes(
                1 if p.is_type1 else 0 for p in everything[lo:hi]
            )
            assert store.covered_bytes(lo, hi, invited) == bytes(
                1 if p.covered_by(invited) else 0 for p in everything[lo:hi]
            )
            assert store.type1_slice(lo, hi) == [p for p in everything[lo:hi] if p.is_type1]
        with pytest.raises(IndexError):
            store.slice(0, 161)
