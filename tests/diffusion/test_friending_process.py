"""Tests for repro.diffusion.friending_process."""

from __future__ import annotations

import pytest

from repro.diffusion.friending_process import (
    AcceptanceEstimate,
    estimate_acceptance_probability,
    estimate_pmax_fixed_samples,
)


class TestAcceptanceEstimate:
    def test_std_error_zero_for_degenerate(self):
        estimate = AcceptanceEstimate(probability=0.0, num_samples=100, successes=0)
        assert estimate.std_error == 0.0

    def test_std_error_positive_for_interior(self):
        estimate = AcceptanceEstimate(probability=0.5, num_samples=100, successes=50)
        assert estimate.std_error == pytest.approx(0.05)

    def test_confidence_interval_clipped(self):
        estimate = AcceptanceEstimate(probability=0.99, num_samples=10, successes=10)
        low, high = estimate.confidence_interval()
        assert 0.0 <= low <= high <= 1.0

    def test_empty_sample_has_infinite_error(self):
        assert AcceptanceEstimate(0.0, 0, 0).std_error == float("inf")


class TestEstimateAcceptanceProbability:
    def test_probability_between_zero_and_one(self, small_ba_graph):
        invitation = set(list(small_ba_graph.nodes())[:20])
        estimate = estimate_acceptance_probability(
            small_ba_graph, 0, 45, invitation, num_samples=100, rng=1
        )
        assert 0.0 <= estimate.probability <= 1.0
        assert estimate.num_samples == 100
        assert estimate.successes == round(estimate.probability * 100)

    def test_empty_invitation_gives_zero(self, chain_graph):
        estimate = estimate_acceptance_probability(
            chain_graph, "s", "t", set(), num_samples=50, rng=2
        )
        assert estimate.probability == 0.0

    def test_monotone_in_invitation_on_chain(self, chain_graph):
        """Adding the missing chain node can only help (supermodular objective)."""
        partial = estimate_acceptance_probability(
            chain_graph, "s", "t", {"t"}, num_samples=600, rng=3
        )
        full = estimate_acceptance_probability(
            chain_graph, "s", "t", {"b", "t"}, num_samples=600, rng=3
        )
        assert full.probability > partial.probability

    def test_chain_probability_matches_closed_form(self, chain_graph):
        # On the chain s-a-b-t with degree-normalized weights the process
        # succeeds iff theta_b <= w(a,b) = 1/2 (and then w(b,t) = 1 always
        # convinces t), so f({b, t}) = 1/2.
        estimate = estimate_acceptance_probability(
            chain_graph, "s", "t", {"b", "t"}, num_samples=4000, rng=4
        )
        assert estimate.probability == pytest.approx(0.5, abs=0.03)

    def test_invalid_sample_count(self, chain_graph):
        with pytest.raises(ValueError):
            estimate_acceptance_probability(chain_graph, "s", "t", {"t"}, num_samples=0)

    def test_deterministic_given_seed(self, small_ba_graph):
        invitation = set(list(small_ba_graph.nodes())[:15])
        a = estimate_acceptance_probability(small_ba_graph, 0, 50, invitation, 200, rng=7)
        b = estimate_acceptance_probability(small_ba_graph, 0, 50, invitation, 200, rng=7)
        assert a == b


class TestEstimatePmax:
    def test_pmax_upper_bounds_any_invitation(self, diamond_graph):
        pmax = estimate_pmax_fixed_samples(diamond_graph, "s", "t", num_samples=3000, rng=5)
        partial = estimate_acceptance_probability(
            diamond_graph, "s", "t", {"x1", "t"}, num_samples=3000, rng=6
        )
        assert pmax.probability + 0.03 >= partial.probability

    def test_diamond_pmax_matches_closed_form(self, diamond_graph):
        # Each route succeeds independently with probability 1/2 * 1/2 for
        # the intermediate node times the 1/2 weight into t; the exact value
        # is P(t accepts) with w(x1,t)=w(x2,t)=1/2 and x_i accepted w.p. 1/2:
        # f(V) = E over theta_t of P(sum of accepted weights >= theta_t)
        #      = P(both) * 1 + P(exactly one) * 1/2 = 1/4 + 1/2 * 1/2 = 1/2.
        pmax = estimate_pmax_fixed_samples(diamond_graph, "s", "t", num_samples=6000, rng=8)
        assert pmax.probability == pytest.approx(0.5, abs=0.03)
