"""Tests for the alias-mode engine (O(1) walk steps, a new named stream).

:class:`NumpyAliasEngine` consumes exactly the same uniform draw sequence
as :class:`NumpyEngine` but maps each draw to a parent through the
precomputed Vose alias tables (:meth:`CompiledGraph.alias_tables`) instead
of a binary search over the cumulative weights.  That makes it a *distinct
named RNG stream* ("numpy-alias"): distributionally interchangeable with
every other engine, bit-reproducible for a fixed seed, and never
byte-compatible with the "numpy" stream -- which in turn must stay
byte-identical to earlier releases (the golden matrix suite under
``tests/golden/`` enforces that independently).
"""

from __future__ import annotations

import pytest

from repro.diffusion.engine import (
    ENGINE_NAMES,
    available_engines,
    create_engine,
    numpy_available,
)
from repro.graph.social_graph import SocialGraph

pytestmark = pytest.mark.skipif(not numpy_available(), reason="numpy is not installed")


class TestRegistry:
    def test_alias_engine_is_registered(self):
        assert "numpy-alias" in ENGINE_NAMES
        assert "numpy-alias" in available_engines()

    def test_name_is_the_stream_tag(self, medium_ba_graph):
        engine = create_engine(medium_ba_graph, "numpy-alias")
        assert engine.name == "numpy-alias"
        assert engine.mode == "alias"

    def test_alias_engine_is_a_numpy_engine(self, medium_ba_graph):
        from repro.diffusion.engine import NumpyAliasEngine, NumpyEngine

        engine = create_engine(medium_ba_graph, "numpy-alias")
        assert isinstance(engine, NumpyAliasEngine)
        assert isinstance(engine, NumpyEngine)
        assert engine.native_batches

    def test_auto_never_selects_the_alias_stream(self, medium_ba_graph):
        # "auto" must keep resolving to the default streams so existing
        # seeded runs stay bit-identical release over release.
        assert create_engine(medium_ba_graph, "auto").name == "numpy"


class TestAliasStreamContract:
    def test_deterministic_per_seed(self, medium_ba_graph):
        engine = create_engine(medium_ba_graph, "numpy-alias")
        stop = medium_ba_graph.neighbor_set(0)
        first = engine.sample_paths(150, stop, 60, rng=7)
        second = engine.sample_paths(150, stop, 60, rng=7)
        assert first == second

    def test_alias_stream_differs_from_search_stream(self):
        """Same seed, same draws -- different parent mapping, so the alias
        stream is a genuinely distinct realization (never silently mixable
        with "numpy" pools, spills or goldens).  Heterogeneous weights are
        required to observe the split: with per-node *uniform* in-weights
        (e.g. degree-normalized graphs) the alias table degenerates to the
        identity and both modes map each draw to the same parent.
        """
        weights = {"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.05}
        graph = SocialGraph(
            edges=[("t", leaf, weight, weight) for leaf, weight in weights.items()]
        )
        search = create_engine(graph, "numpy").sample_paths("t", {"a"}, 500, rng=3)
        alias = create_engine(graph, "numpy-alias").sample_paths("t", {"a"}, 500, rng=3)
        assert search != alias

    def test_alias_matches_search_on_uniform_weights(self, medium_ba_graph):
        """The flip side: on degree-normalized weights the two modes agree
        exactly (identity alias table), a strong end-to-end correctness
        cross-check of the table construction and the O(1) lookup."""
        stop = medium_ba_graph.neighbor_set(0)
        search = create_engine(medium_ba_graph, "numpy").sample_paths(150, stop, 200, rng=3)
        alias = create_engine(medium_ba_graph, "numpy-alias").sample_paths(150, stop, 200, rng=3)
        assert search == alias

    def test_columnar_matches_reference_kernel(self, medium_ba_graph):
        """Alias-mode lockstep kernel is bit-identical to the alias-mode
        per-walker reference kernel (same guard the search mode carries)."""
        engine = create_engine(medium_ba_graph, "numpy-alias")
        stop = medium_ba_graph.neighbor_set(0)
        batch = engine.sample_path_batch(150, stop, 500, rng=19)
        reference = engine.sample_paths_reference(150, stop, 500, rng=19)
        assert batch.to_paths() == reference

    def test_default_numpy_stream_unchanged_by_alias_tables(self, medium_ba_graph):
        """Building the alias tables must not perturb the search stream."""
        stop = medium_ba_graph.neighbor_set(0)
        before = create_engine(medium_ba_graph, "numpy").sample_paths(150, stop, 100, rng=11)
        alias_engine = create_engine(medium_ba_graph, "numpy-alias")
        alias_engine.sample_paths(150, stop, 100, rng=11)  # forces table build
        after = create_engine(medium_ba_graph, "numpy").sample_paths(150, stop, 100, rng=11)
        assert before == after


class TestAliasDistribution:
    def test_chain_type1_rate_matches_theory(self, chain_graph):
        # Same hand-computed rate the shared engine suite checks: the walk
        # from t reaches a (type-1) with probability exactly 1/2.
        engine = create_engine(chain_graph, "numpy-alias")
        paths = engine.sample_paths("t", {"a"}, 3000, rng=11)
        rate = sum(path.is_type1 for path in paths) / 3000
        assert rate == pytest.approx(0.5, abs=0.03)

    def test_type1_rate_agrees_with_search_mode(self, medium_ba_graph):
        stop = medium_ba_graph.neighbor_set(0)
        trials = 4000
        rates = {}
        for name in ("numpy", "numpy-alias"):
            paths = create_engine(medium_ba_graph, name).sample_paths(150, stop, trials, rng=31)
            rates[name] = sum(path.is_type1 for path in paths) / trials
        assert rates["numpy"] == pytest.approx(rates["numpy-alias"], abs=0.04)

    def test_empirical_frequencies_match_the_weights(self):
        """One-step anchor frequencies on a star reproduce the in-weights.

        Every in-neighbour of ``t`` is a stop node, so each sampled path is
        a single alias-table lookup: anchor ``x`` with probability ``w_x``,
        type-0 with the stop-tail probability ``1 - sum(w)``.  This is the
        end-to-end check that the table encodes the exact edge weights.
        """
        weights = {"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.05}
        graph = SocialGraph(
            edges=[("t", leaf, weight, weight) for leaf, weight in weights.items()]
        )
        engine = create_engine(graph, "numpy-alias")
        trials = 20_000
        paths = engine.sample_paths("t", set(weights), trials, rng=5)
        counts: dict = {}
        for path in paths:
            counts[path.anchor] = counts.get(path.anchor, 0) + 1
        for leaf, weight in weights.items():
            assert counts[leaf] / trials == pytest.approx(weight, abs=0.02)
        assert counts.get(None, 0) / trials == pytest.approx(
            1.0 - sum(weights.values()), abs=0.02
        )


class TestStreamThreading:
    """The engine name tags every derived identity (pool spills, wrappers)."""

    def test_pool_spill_tags_separate_the_streams(self, medium_ba_graph):
        from repro.pool.sample_pool import SamplePool, pool_key_digest

        digest = pool_key_digest(150, medium_ba_graph.neighbor_set(0), stream="estimate")
        tags = {
            name: SamplePool(create_engine(medium_ba_graph, name), seed=99)._spill_tag(digest)
            for name in ("numpy", "numpy-alias")
        }
        assert tags["numpy"] != tags["numpy-alias"]

    def test_pool_stream_name_sees_through_parallel_wrapper(self, medium_ba_graph):
        from repro.parallel import ParallelEngine
        from repro.pool.sample_pool import SamplePool

        wrapped = ParallelEngine(create_engine(medium_ba_graph, "numpy-alias"), workers=2)
        pool = SamplePool(wrapped, seed=99)
        assert pool._stream_engine_name() == "numpy-alias"

    def test_parallel_wrapper_name_carries_the_stream(self, medium_ba_graph):
        from repro.parallel import ParallelEngine

        wrapped = ParallelEngine(create_engine(medium_ba_graph, "numpy-alias"), workers=2)
        assert wrapped.name == "parallel[numpy-aliasx2]"
