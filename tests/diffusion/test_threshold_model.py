"""Tests for repro.diffusion.threshold_model (Process 1)."""

from __future__ import annotations

import pytest

from repro.diffusion.threshold_model import (
    FriendingOutcome,
    run_threshold_process,
    sample_thresholds,
    simulate_friending,
)
from repro.exceptions import NodeNotFoundError


class TestSampleThresholds:
    def test_one_threshold_per_user(self, triangle_graph):
        thresholds = sample_thresholds(triangle_graph, rng=1)
        assert set(thresholds) == set(triangle_graph.nodes())

    def test_values_in_unit_interval(self, small_ba_graph):
        thresholds = sample_thresholds(small_ba_graph, rng=2)
        assert all(0.0 <= value <= 1.0 for value in thresholds.values())

    def test_deterministic_given_seed(self, triangle_graph):
        assert sample_thresholds(triangle_graph, rng=5) == sample_thresholds(triangle_graph, rng=5)


class TestRunThresholdProcess:
    """Deterministic checks on the hand-analysable worked example.

    Weights are 0.1 everywhere; with threshold 0.15 a user needs two
    accepted/initial friends, with threshold 0.05 one suffices.
    """

    def test_two_friend_requirement_blocks_cascade(self, worked_example_graph):
        thresholds = {node: 0.15 for node in worked_example_graph.nodes()}
        outcome = run_threshold_process(
            worked_example_graph, "s", {"c", "d", "t"}, thresholds, target="t"
        )
        # c joins (friends a and b are initial), but d and t each have only
        # one friend inside the circle afterwards, so the process stops.
        assert outcome.new_friends == frozenset({"c"})
        assert not outcome.success

    def test_single_friend_threshold_cascades_to_target(self, worked_example_graph):
        thresholds = {node: 0.05 for node in worked_example_graph.nodes()}
        outcome = run_threshold_process(
            worked_example_graph, "s", {"c", "d", "t"}, thresholds, target="t"
        )
        assert outcome.success
        assert outcome.new_friends == frozenset({"c", "d", "t"})

    def test_target_needs_two_friends_via_both_routes(self, worked_example_graph):
        # Threshold 0.15 for t but 0.05 for everyone else: t needs both c
        # and d to accept before it does.
        thresholds = {node: 0.05 for node in worked_example_graph.nodes()}
        thresholds["t"] = 0.15
        with_both = run_threshold_process(
            worked_example_graph, "s", {"c", "d", "t"}, thresholds, target="t"
        )
        assert with_both.success
        without_d = run_threshold_process(
            worked_example_graph, "s", {"c", "t"}, thresholds, target="t"
        )
        assert not without_d.success

    def test_uninvited_users_never_join(self, worked_example_graph):
        thresholds = {node: 0.0 for node in worked_example_graph.nodes()}
        outcome = run_threshold_process(worked_example_graph, "s", {"t"}, thresholds, target="t")
        assert "c" not in outcome.final_friends
        assert not outcome.success

    def test_initial_friends_always_in_final_circle(self, worked_example_graph):
        thresholds = {node: 0.99 for node in worked_example_graph.nodes()}
        outcome = run_threshold_process(worked_example_graph, "s", set(), thresholds)
        assert outcome.final_friends == frozenset({"a", "b"})

    def test_missing_threshold_means_never_accept(self, worked_example_graph):
        outcome = run_threshold_process(worked_example_graph, "s", {"c", "t"}, {}, target="t")
        assert outcome.new_friends == frozenset()

    def test_rounds_counted(self, worked_example_graph):
        thresholds = {node: 0.05 for node in worked_example_graph.nodes()}
        outcome = run_threshold_process(
            worked_example_graph, "s", {"c", "d", "t"}, thresholds, target="t"
        )
        assert outcome.rounds >= 2  # c first, then d/t

    def test_unknown_source_rejected(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            run_threshold_process(triangle_graph, "ghost", set(), {})

    def test_unknown_target_rejected(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            run_threshold_process(triangle_graph, "a", set(), {}, target="ghost")

    def test_success_only_about_target(self, worked_example_graph):
        thresholds = {node: 0.05 for node in worked_example_graph.nodes()}
        outcome = run_threshold_process(worked_example_graph, "s", {"c"}, thresholds, target="t")
        assert outcome.new_friends == frozenset({"c"})
        assert not outcome.success


class TestSimulateFriending:
    def test_returns_outcome(self, chain_graph):
        outcome = simulate_friending(chain_graph, "s", {"b", "t"}, target="t", rng=3)
        assert isinstance(outcome, FriendingOutcome)

    def test_empty_invitation_never_succeeds(self, chain_graph):
        for seed in range(20):
            outcome = simulate_friending(chain_graph, "s", set(), target="t", rng=seed)
            assert not outcome.success

    def test_chain_success_requires_both_nodes(self, chain_graph):
        # On the chain s-a-b-t with 1/|N_v| weights, inviting {b, t} succeeds
        # whenever theta_b <= 1/2 and theta_t <= 1/2; it must succeed for
        # some seeds and fail for others.
        outcomes = [
            simulate_friending(chain_graph, "s", {"b", "t"}, target="t", rng=seed).success
            for seed in range(40)
        ]
        assert any(outcomes)
        assert not all(outcomes)

    def test_deterministic_given_seed(self, small_ba_graph):
        invitation = set(list(small_ba_graph.nodes())[:10])
        a = simulate_friending(small_ba_graph, 0, invitation, target=40, rng=9)
        b = simulate_friending(small_ba_graph, 0, invitation, target=40, rng=9)
        assert a == b

    def test_new_friends_subset_of_invitation(self, small_ba_graph):
        invitation = frozenset(list(small_ba_graph.nodes())[10:30])
        outcome = simulate_friending(small_ba_graph, 0, invitation, rng=4)
        assert outcome.new_friends <= invitation
