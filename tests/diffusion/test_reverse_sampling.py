"""Tests for repro.diffusion.reverse_sampling (lazy t(g) sampling)."""

from __future__ import annotations

import pytest

from repro.diffusion.realization import sample_realization, trace_target_path
from repro.diffusion.reverse_sampling import TargetPath, sample_target_path, sample_target_paths
from repro.exceptions import NodeNotFoundError


class TestTargetPath:
    def test_covered_by_requires_type1(self):
        path = TargetPath(nodes=frozenset({"t", "b"}), is_type1=False)
        assert not path.covered_by({"t", "b", "c"})

    def test_covered_by_subset_rule(self):
        path = TargetPath(nodes=frozenset({"t", "b"}), is_type1=True, anchor="a")
        assert path.covered_by({"t", "b", "x"})
        assert not path.covered_by({"t"})

    def test_len(self):
        assert len(TargetPath(nodes=frozenset({"t", "b"}), is_type1=True)) == 2


class TestSampleTargetPath:
    def test_target_always_in_trace(self, small_ba_graph):
        source_friends = small_ba_graph.neighbor_set(0)
        for seed in range(20):
            path = sample_target_path(small_ba_graph, 50, source_friends, rng=seed)
            assert 50 in path.nodes

    def test_trace_disjoint_from_source_friends(self, small_ba_graph):
        source_friends = small_ba_graph.neighbor_set(0)
        for seed in range(20):
            path = sample_target_path(small_ba_graph, 50, source_friends, rng=seed)
            assert not (path.nodes & source_friends)

    def test_type1_anchor_is_a_source_friend(self, small_ba_graph):
        source_friends = small_ba_graph.neighbor_set(0)
        found_type1 = False
        for seed in range(60):
            path = sample_target_path(small_ba_graph, 50, source_friends, rng=seed)
            if path.is_type1:
                found_type1 = True
                assert path.anchor in source_friends
        assert found_type1

    def test_type0_has_no_anchor(self, chain_graph):
        for seed in range(40):
            path = sample_target_path(chain_graph, "t", {"a"}, rng=seed)
            if not path.is_type1:
                assert path.anchor is None

    def test_trace_forms_a_path_in_the_graph(self, small_ba_graph):
        """Consecutive traced nodes must be friends (the walk follows edges)."""
        source_friends = small_ba_graph.neighbor_set(0)
        path = sample_target_path(small_ba_graph, 50, source_friends, rng=3)
        nodes = set(path.nodes)
        # Every traced node other than the target must have at least one
        # friend inside the trace (its successor towards the target).
        for node in nodes - {50}:
            assert any(small_ba_graph.has_edge(node, other) for other in nodes if other != node)

    def test_unknown_target_rejected(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            sample_target_path(triangle_graph, "ghost", {"a"})

    def test_chain_type1_probability_matches_theory(self, chain_graph):
        # Backward walk from t: t picks b (probability 1), b picks a with
        # probability 1/2 (type-1) or t with probability 1/2 (cycle, type-0).
        hits = sum(
            sample_target_path(chain_graph, "t", {"a"}, rng=seed).is_type1 for seed in range(3000)
        )
        assert hits / 3000 == pytest.approx(0.5, abs=0.03)

    def test_matches_full_realization_marginal(self, diamond_graph):
        """The lazy sampler's type-1 frequency equals the full-realization one."""
        source_friends = diamond_graph.neighbor_set("s")
        trials = 3000
        lazy_hits = sum(
            sample_target_path(diamond_graph, "t", source_friends, rng=seed).is_type1
            for seed in range(trials)
        )
        full_hits = 0
        for seed in range(trials):
            realization = sample_realization(diamond_graph, rng=10_000 + seed)
            _, is_type1 = trace_target_path(realization, "t", source_friends)
            full_hits += is_type1
        assert lazy_hits / trials == pytest.approx(full_hits / trials, abs=0.04)


class TestSampleTargetPaths:
    def test_count(self, small_ba_graph):
        paths = list(sample_target_paths(small_ba_graph, 30, small_ba_graph.neighbor_set(0), 25, rng=1))
        assert len(paths) == 25

    def test_negative_count_rejected(self, small_ba_graph):
        with pytest.raises(ValueError):
            list(sample_target_paths(small_ba_graph, 30, set(), -1))

    def test_reproducible_with_seed(self, small_ba_graph):
        friends = small_ba_graph.neighbor_set(0)
        a = [p.nodes for p in sample_target_paths(small_ba_graph, 30, friends, 10, rng=5)]
        b = [p.nodes for p in sample_target_paths(small_ba_graph, 30, friends, 10, rng=5)]
        assert a == b
