"""Tests for repro.experiments.harness and repro.experiments.reporting."""

from __future__ import annotations

import pytest

from repro.core.problem import ActiveFriendingProblem
from repro.experiments.harness import evaluate_invitation, growth_curve
from repro.experiments.reporting import format_series, format_table


class TestEvaluateInvitation:
    def test_matches_direct_estimate_on_chain(self, chain_graph):
        value = evaluate_invitation(chain_graph, "s", "t", {"b", "t"}, num_samples=4000, rng=1)
        assert value == pytest.approx(0.5, abs=0.03)

    def test_empty_invitation(self, chain_graph):
        assert evaluate_invitation(chain_graph, "s", "t", set(), num_samples=200, rng=2) == 0.0


class TestGrowthCurve:
    def test_stops_once_target_reached(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        ranking = ["t", "x1", "x2"]
        trajectory = growth_curve(problem, ranking, target_probability=0.2, num_samples=600,
                                  size_step=1, rng=3)
        assert trajectory[-1][1] >= 0.2
        # It should not have needed the full ranking: {t, x1} already gives 0.25.
        assert trajectory[-1][0] <= 2

    def test_exhausts_ranking_when_target_unreachable(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        ranking = ["t", "x1", "x2"]
        trajectory = growth_curve(problem, ranking, target_probability=0.99, num_samples=400,
                                  size_step=1, rng=4)
        assert trajectory[-1][0] == 3

    def test_sizes_increase(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        trajectory = growth_curve(problem, ["t", "x1", "x2"], 0.99, num_samples=200,
                                  size_step=1, rng=5)
        sizes = [size for size, _ in trajectory]
        assert sizes == sorted(sizes)

    def test_empty_ranking(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        assert growth_curve(problem, [], 0.5, rng=6) == []

    def test_max_size_cap(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        trajectory = growth_curve(problem, ["t", "x1", "x2"], 0.99, num_samples=200,
                                  size_step=1, max_size=2, rng=7)
        assert trajectory[-1][0] <= 2


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_format_table_handles_missing_keys(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_large_numbers_get_thousands_separator(self):
        assert "1,100,000" in format_table([{"nodes": 1_100_000}])

    def test_format_series(self):
        text = format_series([(0.1, 2.0), (0.2, 3.5)], x_label="alpha", y_label="ratio")
        assert "alpha" in text and "ratio" in text
        assert "0.1" in text
