"""Golden regression tests for the scenario-matrix records.

The committed files under ``tests/golden/matrix*/`` are the canonical
byte-for-byte output of ``repro matrix`` on two tiny fixture graphs (the
wiki and hepth stand-ins at a small scale).  The tests assert that today's
code still produces exactly those bytes -- across worker counts and pool
settings, and (for the engine-specific goldens) per engine -- so any
change that silently perturbs a sampling stream, a seed derivation, the
record schema or the canonical JSON encoding fails loudly here instead of
surfacing as an unexplained drift in archived experiment results.

Regenerate after an *intentional* stream/schema change with::

    PYTHONPATH=src python tests/experiments/test_golden_matrix.py --regenerate

and commit the diff (the review then shows exactly what changed).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.diffusion.engine import numpy_available
from repro.experiments.matrix import MatrixSpec, run_matrix

GOLDEN_ROOT = Path(__file__).resolve().parent.parent / "golden"

#: The two tiny fixture graphs, one grid each; the numpy golden exists so
#: the vectorized engine's stream is pinned too (skipped where unavailable).
GOLDEN_SPECS = {
    "matrix-python": MatrixSpec(
        datasets=("wiki", "hepth"),
        algorithms=("raf", "hd"),
        budgets=(3,),
        engines=("python",),
        scale=0.02,
        realizations=300,
        eval_samples=100,
        screen_samples=150,
        seed=17,
    ),
    "matrix-numpy": MatrixSpec(
        datasets=("wiki",),
        algorithms=("raf",),
        budgets=(3,),
        engines=("numpy",),
        scale=0.02,
        realizations=300,
        eval_samples=100,
        screen_samples=150,
        seed=17,
    ),
}


def _golden_dir(name: str) -> Path:
    return GOLDEN_ROOT / name


def _assert_matches_golden(name: str, produced: Path) -> None:
    golden = _golden_dir(name)
    golden_files = sorted(path.name for path in golden.glob("*.json"))
    assert golden_files, f"no committed goldens under {golden}"
    produced_files = sorted(path.name for path in produced.glob("*.json"))
    assert produced_files == golden_files
    for filename in golden_files:
        expected = (golden / filename).read_bytes()
        actual = (produced / filename).read_bytes()
        assert actual == expected, (
            f"{name}/{filename} drifted from the committed golden; if the "
            "change is intentional, regenerate via "
            "'python tests/experiments/test_golden_matrix.py --regenerate'"
        )


class TestGoldenMatrix:
    @pytest.mark.parametrize(
        "workers,pool",
        [(1, True), (1, False), (2, True)],
        ids=["serial-pooled", "serial-pool-free", "fanned-pooled"],
    )
    def test_python_records_match_goldens(self, tmp_path, workers, pool):
        spec = GOLDEN_SPECS["matrix-python"]
        spec = MatrixSpec(**{**_spec_kwargs(spec), "pool": pool})
        run_matrix(spec, tmp_path, workers=workers)
        _assert_matches_golden("matrix-python", tmp_path)

    @pytest.mark.skipif(not numpy_available(), reason="numpy engine unavailable")
    def test_numpy_records_match_goldens(self, tmp_path):
        run_matrix(GOLDEN_SPECS["matrix-numpy"], tmp_path, workers=1)
        _assert_matches_golden("matrix-numpy", tmp_path)

    def test_goldens_resume_cleanly(self, tmp_path):
        """Committed goldens are valid resume state for their spec."""
        import shutil

        for path in _golden_dir("matrix-python").glob("*.json"):
            shutil.copy(path, tmp_path / path.name)
        result = run_matrix(GOLDEN_SPECS["matrix-python"], tmp_path, workers=1)
        assert result.computed == ()
        assert len(result.skipped) == len(GOLDEN_SPECS["matrix-python"].cells())


def _spec_kwargs(spec: MatrixSpec) -> dict:
    import dataclasses

    return {field.name: getattr(spec, field.name) for field in dataclasses.fields(spec)}


def _regenerate() -> None:
    import shutil
    import tempfile

    for name, spec in GOLDEN_SPECS.items():
        if "numpy" in name and not numpy_available():
            print(f"skipping {name}: numpy unavailable")
            continue
        target = _golden_dir(name)
        with tempfile.TemporaryDirectory() as scratch:
            run_matrix(spec, scratch, workers=1, echo=print)
            if target.is_dir():
                shutil.rmtree(target)
            target.mkdir(parents=True)
            for path in sorted(Path(scratch).glob("*.json")):
                shutil.copy(path, target / path.name)
        print(f"regenerated {len(list(target.glob('*.json')))} goldens in {target}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
