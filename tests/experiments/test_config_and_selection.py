"""Tests for repro.experiments.config and repro.experiments.pair_selection."""

from __future__ import annotations

import pytest

from repro.core.parameters import SamplePolicy
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.pair_selection import screen_pmax, select_pairs
from repro.graph.traversal import bfs_distances


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.num_pairs > 0
        assert 0 < config.pmax_threshold < config.pmax_ceiling

    def test_invalid_pair_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_pairs=0)

    def test_threshold_must_be_below_ceiling(self):
        with pytest.raises(ValueError):
            ExperimentConfig(pmax_threshold=0.6, pmax_ceiling=0.5)

    def test_empty_alpha_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(alphas=())

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(alphas=(0.1, 1.5))

    def test_raf_config_uses_fixed_policy(self):
        config = ExperimentConfig(realizations=777)
        raf = config.raf_config(0.2)
        assert raf.sample_policy == SamplePolicy.FIXED
        assert raf.fixed_realizations == 777

    def test_raf_config_caps_epsilon_below_alpha(self):
        config = ExperimentConfig(raf_epsilon=0.2, alphas=(0.05, 0.1))
        assert config.raf_config(0.05).epsilon <= 0.025
        assert config.raf_config().epsilon <= 0.025


class TestScreenPmax:
    def test_diamond_value(self, diamond_graph):
        value = screen_pmax(diamond_graph, "s", "t", num_samples=3000, rng=1)
        assert value == pytest.approx(0.5, abs=0.04)

    def test_unreachable_pair_is_zero(self):
        from repro.graph.social_graph import SocialGraph
        from repro.graph.weights import apply_degree_normalized_weights

        graph = apply_degree_normalized_weights(SocialGraph(edges=[("s", "a"), ("t", "x")]))
        assert screen_pmax(graph, "s", "t", num_samples=200, rng=2) == 0.0

    def test_invalid_sample_count(self, diamond_graph):
        with pytest.raises(ValueError):
            screen_pmax(diamond_graph, "s", "t", num_samples=0)


class TestSelectPairs:
    def test_returns_requested_count(self, medium_ba_graph):
        pairs = select_pairs(medium_ba_graph, 5, screen_samples=150, rng=3)
        assert len(pairs) == 5

    def test_pairs_are_not_friends(self, medium_ba_graph):
        for pair in select_pairs(medium_ba_graph, 5, screen_samples=150, rng=4):
            assert not medium_ba_graph.has_edge(pair.source, pair.target)

    def test_pmax_recorded_and_within_bounds(self, medium_ba_graph):
        pairs = select_pairs(
            medium_ba_graph, 4, pmax_threshold=0.02, pmax_ceiling=0.9, screen_samples=150, rng=5
        )
        for pair in pairs:
            assert 0.02 <= pair.pmax <= 0.9

    def test_min_distance_respected(self, medium_ba_graph):
        pairs = select_pairs(
            medium_ba_graph, 3, min_distance=3, screen_samples=150, rng=6
        )
        for pair in pairs:
            assert bfs_distances(medium_ba_graph, pair.source)[pair.target] >= 3

    def test_impossible_criteria_raise(self, medium_ba_graph):
        with pytest.raises(ExperimentError):
            select_pairs(
                medium_ba_graph, 3, pmax_threshold=0.99, pmax_ceiling=0.999,
                screen_samples=100, rng=7, max_attempts=50,
            )

    def test_min_distance_below_two_rejected(self, medium_ba_graph):
        with pytest.raises(ExperimentError):
            select_pairs(medium_ba_graph, 2, min_distance=1, rng=8)

    def test_tiny_graph_rejected(self):
        from repro.graph.social_graph import SocialGraph

        with pytest.raises(ExperimentError):
            select_pairs(SocialGraph(nodes=[1]), 1, rng=9)

    def test_deterministic_given_seed(self, medium_ba_graph):
        a = select_pairs(medium_ba_graph, 3, screen_samples=100, rng=10)
        b = select_pairs(medium_ba_graph, 3, screen_samples=100, rng=10)
        assert [(p.source, p.target) for p in a] == [(p.source, p.target) for p in b]
