"""Tests for repro.experiments.records."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

from repro.core.parameters import ParameterCoupling, RAFParameters
from repro.experiments.records import load_record, save_record, to_jsonable
from repro.types import PairSpec


@dataclass(frozen=True)
class _Sample:
    name: str
    values: tuple
    members: frozenset


class TestToJsonable:
    def test_primitives_pass_through(self):
        for value in [1, 2.5, "x", True, None]:
            assert to_jsonable(value) == value

    def test_dataclass_becomes_tagged_dict(self):
        payload = to_jsonable(_Sample(name="a", values=(1, 2), members=frozenset({3, 1})))
        assert payload["__type__"] == "_Sample"
        assert payload["name"] == "a"
        assert payload["values"] == [1, 2]
        assert payload["members"] == [1, 3]

    def test_nested_dataclasses(self):
        pair = PairSpec(source=1, target=2, pmax=0.5)
        payload = to_jsonable({"pair": pair})
        assert payload["pair"]["__type__"] == "PairSpec"
        assert payload["pair"]["pmax"] == 0.5

    def test_enum_value(self):
        assert to_jsonable(ParameterCoupling.PAPER) == "paper"

    def test_raf_parameters_serializable(self):
        parameters = RAFParameters(
            alpha=0.1, epsilon=0.01, num_nodes=10, coupling=ParameterCoupling.BALANCED,
            epsilon_zero=0.02, epsilon_one=0.02, beta=0.07,
        )
        payload = to_jsonable(parameters)
        json.dumps(payload)  # must be valid JSON content
        assert payload["coupling"] == "balanced"

    def test_unknown_objects_fall_back_to_repr(self):
        class Odd:
            def __repr__(self) -> str:
                return "<odd>"

        assert to_jsonable(Odd()) == "<odd>"

    def test_dict_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "record.json"
        record = save_record(path, "fig3/wiki", {"rows": [{"alpha": 0.1, "raf": 0.02}]},
                             metadata={"seed": 7})
        loaded = load_record(path)
        assert loaded == record
        assert loaded["name"] == "fig3/wiki"
        assert loaded["metadata"]["seed"] == 7
        assert loaded["result"]["rows"][0]["alpha"] == 0.1

    def test_experiment_result_round_trip(self, tmp_path, diamond_graph):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.realization_sweep import run_realization_sweep

        config = ExperimentConfig(num_pairs=1, realizations=300, eval_samples=50,
                                  pair_screen_samples=50)
        result = run_realization_sweep(
            diamond_graph, PairSpec("s", "t", 0.5), config,
            realization_counts=(100, 300), dataset_name="diamond", rng=1,
        )
        path = tmp_path / "sweep.json"
        save_record(path, "fig6/diamond", result, metadata={"config": config})
        loaded = load_record(path)
        assert loaded["result"]["__type__"] == "RealizationSweepResult"
        assert len(loaded["result"]["rows"]) == 2
        assert loaded["metadata"]["config"]["__type__"] == "ExperimentConfig"

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "r.json"
        save_record(path, "x", [1, 2, 3])
        json.loads(path.read_text(encoding="utf-8"))
