"""Tests for the scenario-matrix runner and the record store."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import EngineError, ExperimentError
from repro.experiments.matrix import (
    MATRIX_ALGORITHM_NAMES,
    MatrixCell,
    MatrixSpec,
    format_matrix,
    run_matrix,
    run_matrix_cell,
)
from repro.experiments.records import RecordStore

#: One tiny spec shared by the whole module (cells cache per spec+dataset).
SPEC = MatrixSpec(
    datasets=("wiki",),
    algorithms=("raf", "hd"),
    budgets=(3,),
    engines=("python",),
    scale=0.03,
    realizations=400,
    eval_samples=120,
    screen_samples=150,
    seed=11,
)


class TestRecordStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = RecordStore(tmp_path / "records")
        assert not store.has("alpha")
        store.save("alpha", {"value": 1})
        assert store.has("alpha")
        assert store.load("alpha")["result"] == {"value": 1}
        assert store.names() == ["alpha"]
        assert len(store) == 1

    def test_empty_store(self, tmp_path):
        store = RecordStore(tmp_path / "missing")
        assert store.names() == []
        assert list(store) == []
        assert len(store) == 0

    def test_names_are_sanitized(self, tmp_path):
        store = RecordStore(tmp_path)
        store.save("fig3/wiki pmax", {"x": 1})
        assert store.path_for("fig3/wiki pmax").name == "fig3-wiki-pmax.json"
        assert store.has("fig3/wiki pmax")
        assert store.load("fig3/wiki pmax")["name"] == "fig3/wiki pmax"

    def test_canonical_bytes(self, tmp_path):
        store_a = RecordStore(tmp_path / "a")
        store_b = RecordStore(tmp_path / "b")
        payload = {"b": 2, "a": [3, 1], "nested": {"z": True, "y": None}}
        store_a.save("thing", payload)
        store_b.save("thing", payload)
        assert store_a.path_for("thing").read_bytes() == store_b.path_for("thing").read_bytes()


class TestMatrixSpec:
    def test_cells_enumerate_full_product_in_order(self):
        spec = MatrixSpec(
            datasets=("wiki", "hepth"),
            algorithms=("raf",),
            budgets=(2, 4),
            engines=("python",),
        )
        ids = [cell.cell_id for cell in spec.cells()]
        assert ids == [
            "wiki__raf__b2__python",
            "wiki__raf__b4__python",
            "hepth__raf__b2__python",
            "hepth__raf__b4__python",
        ]

    def test_cell_id_is_filesystem_safe(self):
        cell = MatrixCell(dataset="wiki", algorithm="raf", budget=8, engine="python")
        assert cell.cell_id == "wiki__raf__b8__python"

    def test_known_algorithms_exposed(self):
        assert "raf" in MATRIX_ALGORITHM_NAMES
        assert "hd" in MATRIX_ALGORITHM_NAMES

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ExperimentError):
            MatrixSpec(datasets=("atlantis",))
        with pytest.raises(ExperimentError):
            MatrixSpec(algorithms=("simulated-annealing",))
        with pytest.raises(EngineError):
            MatrixSpec(engines=("fortran",))
        with pytest.raises(ValueError):
            MatrixSpec(budgets=(0,))
        with pytest.raises(ValueError):
            MatrixSpec(datasets=())


class TestRunMatrixCell:
    def test_record_is_deterministic_and_json_ready(self):
        cell = SPEC.cells()[0]
        first = run_matrix_cell(SPEC, cell)
        second = run_matrix_cell(SPEC, cell)
        assert first == second
        # Canonical serialization round-trips without loss.
        assert json.loads(json.dumps(first, sort_keys=True)) == first
        assert first["size"] <= cell.budget
        assert 0.0 <= first["acceptance"] <= 1.0
        assert first["cell"]["algorithm"] == "raf"
        assert first["extras"]["num_realizations"] == SPEC.realizations

    def test_cells_of_one_dataset_share_the_pair(self):
        records = [run_matrix_cell(SPEC, cell) for cell in SPEC.cells()]
        pairs = {json.dumps(record["pair"], sort_keys=True) for record in records}
        assert len(pairs) == 1


class TestRunMatrix:
    def test_streams_records_and_summarizes(self, tmp_path):
        out = tmp_path / "records"
        messages: list[str] = []
        result = run_matrix(SPEC, out, echo=messages.append)
        assert len(result.rows) == 2
        assert result.skipped == ()
        assert sorted(result.computed) == sorted(cell.cell_id for cell in SPEC.cells())
        assert len(list(out.glob("*.json"))) == 2
        assert any("recorded" in message for message in messages)
        table = format_matrix(result)
        assert "raf" in table and "hd" in table

    def test_worker_counts_produce_byte_identical_records(self, tmp_path):
        serial = tmp_path / "serial"
        fanned = tmp_path / "fanned"
        run_matrix(SPEC, serial, workers=1)
        run_matrix(SPEC, fanned, workers=4)
        serial_files = sorted(serial.glob("*.json"))
        assert len(serial_files) == 2
        for path in serial_files:
            assert path.read_bytes() == (fanned / path.name).read_bytes()

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        out = tmp_path / "records"
        first = run_matrix(SPEC, out, workers=1)
        assert first.skipped == ()
        victim = out / "wiki__raf__b3__python.json"
        original = victim.read_bytes()
        victim.unlink()

        resumed = run_matrix(SPEC, out, workers=1)
        assert resumed.computed == ("wiki__raf__b3__python",)
        assert resumed.skipped == ("wiki__hd__b3__python",)
        # The recomputed record is byte-identical to the one that was lost.
        assert victim.read_bytes() == original
        assert resumed.rows == first.rows

    def test_resume_under_different_spec_is_rejected(self, tmp_path):
        out = tmp_path / "records"
        run_matrix(SPEC, out)
        other = MatrixSpec(
            datasets=SPEC.datasets,
            algorithms=SPEC.algorithms,
            budgets=SPEC.budgets,
            engines=SPEC.engines,
            scale=SPEC.scale,
            realizations=SPEC.realizations,
            eval_samples=SPEC.eval_samples,
            screen_samples=SPEC.screen_samples,
            seed=SPEC.seed + 1,
        )
        with pytest.raises(ExperimentError, match="different matrix spec"):
            run_matrix(other, out)
        # resume=False recomputes and re-stamps the records for the new spec.
        rerun = run_matrix(other, out, resume=False)
        assert len(rerun.computed) == 2
        run_matrix(other, out)  # now resumable under the new spec

    def test_grid_extension_resumes_over_existing_records(self, tmp_path):
        out = tmp_path / "records"
        run_matrix(SPEC, out)
        wider = MatrixSpec(
            datasets=SPEC.datasets,
            algorithms=SPEC.algorithms,
            budgets=SPEC.budgets + (5,),
            engines=SPEC.engines,
            scale=SPEC.scale,
            realizations=SPEC.realizations,
            eval_samples=SPEC.eval_samples,
            screen_samples=SPEC.screen_samples,
            seed=SPEC.seed,
        )
        extended = run_matrix(wider, out)
        # The original cells resume (same protocol), only the new budget runs.
        assert sorted(extended.skipped) == sorted(cell.cell_id for cell in SPEC.cells())
        assert sorted(extended.computed) == ["wiki__hd__b5__python", "wiki__raf__b5__python"]

    def test_no_scratch_files_left_behind(self, tmp_path):
        out = tmp_path / "records"
        run_matrix(SPEC, out)
        assert list(out.glob("*.tmp")) == []

    def test_fresh_recomputes_everything(self, tmp_path):
        out = tmp_path / "records"
        run_matrix(SPEC, out)
        rerun = run_matrix(SPEC, out, resume=False)
        assert sorted(rerun.computed) == sorted(cell.cell_id for cell in SPEC.cells())
        assert rerun.skipped == ()


class TestPoolCacheInvalidation:
    def test_cells_survive_dataset_instance_changes(self):
        """A spec differing only in an instance-affecting knob outside the
        pool-cache key must rebuild the pool on the fresh graph object
        instead of raising EngineError (regression: stale engine binding)."""
        first = run_matrix_cell(SPEC, SPEC.cells()[0])
        other = MatrixSpec(
            datasets=SPEC.datasets,
            algorithms=SPEC.algorithms,
            budgets=SPEC.budgets,
            engines=SPEC.engines,
            scale=SPEC.scale,
            realizations=SPEC.realizations,
            eval_samples=SPEC.eval_samples,
            screen_samples=SPEC.screen_samples + 10,
            seed=SPEC.seed,
        )
        run_matrix_cell(other, other.cells()[0])  # must not raise
        # And the original spec still reproduces its record byte-for-byte.
        assert run_matrix_cell(SPEC, SPEC.cells()[0]) == first
