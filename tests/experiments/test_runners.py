"""Tests for the table/figure experiment runners (kept small and fast).

These tests verify the experimental *protocol* -- the right quantities are
computed, averaged and reported -- on miniature configurations.  The
paper-shape assertions (who wins, by how much) live in the integration
tests and the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.experiments.basic_experiment import format_basic_experiment, run_basic_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets_table import format_datasets_table, run_datasets_table
from repro.experiments.pair_selection import select_pairs
from repro.experiments.ratio_comparison import format_ratio_comparison, run_ratio_comparison
from repro.experiments.realization_sweep import format_realization_sweep, run_realization_sweep
from repro.experiments.vmax_comparison import format_vmax_comparison, run_vmax_comparison
from repro.exceptions import ExperimentError
from repro.graph.datasets import DATASET_NAMES, load_dataset


@pytest.fixture(scope="module")
def wiki_graph():
    return load_dataset("wiki", scale=0.04, rng=17)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        num_pairs=2,
        alphas=(0.1, 0.3),
        realizations=1200,
        eval_samples=150,
        pair_screen_samples=150,
        seed=7,
    )


@pytest.fixture(scope="module")
def wiki_pairs(wiki_graph, tiny_config):
    return select_pairs(
        wiki_graph,
        tiny_config.num_pairs,
        pmax_threshold=tiny_config.pmax_threshold,
        pmax_ceiling=tiny_config.pmax_ceiling,
        min_distance=tiny_config.min_distance,
        screen_samples=tiny_config.pair_screen_samples,
        rng=tiny_config.seed,
    )


class TestDatasetsTable:
    def test_all_datasets_have_rows(self):
        rows = run_datasets_table(scale=0.01, rng=1)
        assert [row.dataset for row in rows] == list(DATASET_NAMES)
        for row in rows:
            assert row.nodes > 0
            assert row.edges > 0
            assert row.avg_degree > 0

    def test_rows_carry_paper_reference_values(self):
        rows = run_datasets_table(datasets=("wiki",), scale=0.01, rng=2)
        assert rows[0].paper_nodes == 7_000
        assert rows[0].paper_avg_degree == pytest.approx(14.7)

    def test_formatting(self):
        text = format_datasets_table(run_datasets_table(datasets=("wiki",), scale=0.01, rng=3))
        assert "Table I" in text
        assert "wiki" in text


class TestBasicExperiment:
    def test_rows_per_alpha(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_basic_experiment(wiki_graph, wiki_pairs, tiny_config, dataset_name="wiki", rng=5)
        assert len(result.rows) == len(tiny_config.alphas)
        for row in result.rows:
            assert set(row) == {"alpha", "pmax", "raf", "hd", "sp", "avg_size"}
            assert 0.0 <= row["raf"] <= 1.0
            assert 0.0 <= row["hd"] <= 1.0
            assert 0.0 <= row["sp"] <= 1.0
            assert row["pmax"] > 0.0
            assert row["avg_size"] >= 1.0

    def test_series_accessor(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_basic_experiment(wiki_graph, wiki_pairs, tiny_config, dataset_name="wiki", rng=5)
        series = result.series("raf")
        assert [alpha for alpha, _ in series] == list(tiny_config.alphas)

    def test_formatting(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_basic_experiment(wiki_graph, wiki_pairs, tiny_config, dataset_name="wiki", rng=5)
        text = format_basic_experiment(result)
        assert "Fig. 3" in text and "wiki" in text


class TestRatioComparison:
    @pytest.mark.parametrize("baseline", ["HD", "SP"])
    def test_bins_are_well_formed(self, wiki_graph, wiki_pairs, tiny_config, baseline):
        result = run_ratio_comparison(
            wiki_graph, wiki_pairs, tiny_config, baseline=baseline, dataset_name="wiki", rng=6
        )
        assert result.baseline == baseline
        assert result.num_pairs >= 1
        assert result.raw_points
        for row in result.bins:
            assert 0.0 < row["probability_ratio"] <= 1.0
            assert row["size_ratio"] > 0.0
            assert row["points"] >= 1

    def test_unknown_baseline_rejected(self, wiki_graph, wiki_pairs, tiny_config):
        with pytest.raises(ExperimentError):
            run_ratio_comparison(wiki_graph, wiki_pairs, tiny_config, baseline="PR")

    def test_formatting_mentions_figure(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_ratio_comparison(
            wiki_graph, wiki_pairs, tiny_config, baseline="HD", dataset_name="wiki", rng=6
        )
        assert "Fig. 4" in format_ratio_comparison(result)
        sp_result = run_ratio_comparison(
            wiki_graph, wiki_pairs, tiny_config, baseline="SP", dataset_name="wiki", rng=6
        )
        assert "Fig. 5" in format_ratio_comparison(sp_result)


class TestVmaxComparison:
    def test_averages_consistent_with_per_pair(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_vmax_comparison(wiki_graph, wiki_pairs, tiny_config, dataset_name="wiki", rng=7)
        assert result.num_pairs == len(result.per_pair) > 0
        mean_ratio = sum(row["ratio"] for row in result.per_pair) / len(result.per_pair)
        assert result.avg_ratio == pytest.approx(mean_ratio)
        # Vmax is a superset of any RAF invitation, so the ratio is >= 1.
        for row in result.per_pair:
            assert row["vmax_size"] >= row["raf_size"]

    def test_table_row_format(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_vmax_comparison(wiki_graph, wiki_pairs, tiny_config, dataset_name="wiki", rng=7)
        text = format_vmax_comparison([result])
        assert "Table II" in text and "wiki" in text


class TestRealizationSweep:
    def test_rows_sorted_by_realizations(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_realization_sweep(
            wiki_graph, wiki_pairs[0], tiny_config,
            realization_counts=(200, 800, 2400), dataset_name="wiki", rng=8,
        )
        counts = [row["realizations"] for row in result.rows]
        assert counts == sorted(counts)
        for row in result.rows:
            assert row["invitation_size"] >= 1
            assert 0.0 <= row["acceptance_probability"] <= 1.0

    def test_beta_recorded(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_realization_sweep(
            wiki_graph, wiki_pairs[0], tiny_config, realization_counts=(300,), rng=9
        )
        assert 0.0 < result.beta < result.alpha

    def test_formatting(self, wiki_graph, wiki_pairs, tiny_config):
        result = run_realization_sweep(
            wiki_graph, wiki_pairs[0], tiny_config, realization_counts=(300, 900), rng=10
        )
        assert "Fig. 6" in format_realization_sweep(result)
