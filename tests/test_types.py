"""Tests for repro.types and repro.exceptions."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AlgorithmError,
    EdgeNotFoundError,
    GraphError,
    InfeasibleCoverError,
    NodeNotFoundError,
    ProblemDefinitionError,
    ReproError,
    SetCoverError,
    WeightError,
)
from repro.types import Interval, PairSpec, as_frozen, ordered


class TestPairSpec:
    def test_fields(self):
        pair = PairSpec(source=1, target=2)
        assert pair.source == 1
        assert pair.target == 2
        assert pair.pmax is None

    def test_with_pmax_returns_new_instance(self):
        pair = PairSpec(1, 2)
        updated = pair.with_pmax(0.25)
        assert updated.pmax == 0.25
        assert pair.pmax is None

    def test_frozen(self):
        pair = PairSpec(1, 2)
        with pytest.raises(AttributeError):
            pair.source = 5  # type: ignore[misc]

    def test_hashable(self):
        assert len({PairSpec(1, 2), PairSpec(1, 2), PairSpec(2, 1)}) == 2


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(0.2, 0.4)
        assert interval.contains(0.2)
        assert interval.contains(0.39)
        assert not interval.contains(0.4)

    def test_midpoint(self):
        assert Interval(0.0, 1.0).midpoint == 0.5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.5, 0.5)

    def test_partition_covers_range(self):
        parts = Interval.partition(0.0, 1.0, 5)
        assert len(parts) == 5
        assert parts[0].low == 0.0
        assert parts[-1].high == pytest.approx(1.0)
        # Every value in [0, 1) falls into exactly one bin.
        for value in [0.0, 0.19, 0.5, 0.99]:
            assert sum(part.contains(value) for part in parts) == 1

    def test_partition_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            Interval.partition(0.0, 1.0, 0)


class TestHelpers:
    def test_as_frozen_idempotent(self):
        fs = frozenset({1, 2})
        assert as_frozen(fs) is fs

    def test_as_frozen_converts(self):
        assert as_frozen([1, 2, 2]) == frozenset({1, 2})

    def test_ordered_sorts_ints(self):
        assert ordered([3, 1, 2]) == [1, 2, 3]

    def test_ordered_handles_mixed_types(self):
        result = ordered([2, "a", 1])
        assert set(result) == {2, "a", 1}
        assert len(result) == 3


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in [
            GraphError,
            NodeNotFoundError,
            EdgeNotFoundError,
            WeightError,
            ProblemDefinitionError,
            SetCoverError,
            InfeasibleCoverError,
            AlgorithmError,
        ]:
            assert issubclass(exc_type, ReproError)

    def test_node_not_found_is_keyerror(self):
        assert issubclass(NodeNotFoundError, KeyError)
        error = NodeNotFoundError(42)
        assert error.node == 42

    def test_edge_not_found_records_endpoints(self):
        error = EdgeNotFoundError("u", "v")
        assert error.u == "u"
        assert error.v == "v"

    def test_weight_error_is_value_error(self):
        assert issubclass(WeightError, ValueError)

    def test_infeasible_cover_is_set_cover_error(self):
        assert issubclass(InfeasibleCoverError, SetCoverError)
