"""Property-based tests for the set-cover package (msc / budgeted / mpu).

Random weighted hypergraphs drive the three solver families through their
structural contracts:

* **feasibility** -- every solver's output actually covers what it claims
  (``covered_weight`` consistent with the system, targets met, budgets
  respected, covers inside the universe);
* **monotonicity** -- the budgeted cover's weight never drops when the
  budget grows (the regression the greedy's budget-dependent first pick
  used to cause), and the exact MpU optimum never shrinks when ``p`` grows;
* **the approximation invariant** -- on instances small enough for the
  exact solver, every heuristic is at least as large as the optimum and the
  Chlamtáč subroutine stays within its quoted ``2√|U|`` factor.

Hypothesis runs derandomized (the repo convention for property suites), so
a passing example stays passing in CI.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleCoverError
from repro.setcover.budgeted import budgeted_trace_cover
from repro.setcover.hypergraph import SetSystem
from repro.setcover.mpu import (
    chlamtac_mpu,
    chlamtac_ratio_bound,
    exact_mpu,
    greedy_min_union,
    smallest_sets_union,
)
from repro.setcover.msc import MSC_SOLVERS, greedy_node_cover, minimum_subset_cover

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Small universes keep the exact solver tractable while still producing
#: overlapping, duplicated member sets (the regime the traces live in).
_members = st.frozensets(st.integers(min_value=0, max_value=9), min_size=1, max_size=4)


@st.composite
def systems(draw, max_sets: int = 8):
    """A random weighted :class:`SetSystem` with 1..max_sets member sets."""
    sets = draw(st.lists(_members, min_size=1, max_size=max_sets))
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=5),
            min_size=len(sets),
            max_size=len(sets),
        )
    )
    return SetSystem(sets, weights)


@st.composite
def systems_with_target(draw, max_sets: int = 8):
    """A random system plus a feasible cover target ``1 <= p <= total weight``."""
    system = draw(systems(max_sets=max_sets))
    p = draw(st.integers(min_value=1, max_value=system.total_weight))
    return system, p


class TestMscFeasibility:
    @pytest.mark.parametrize("solver", sorted(MSC_SOLVERS))
    @given(data=systems_with_target())
    @SETTINGS
    def test_cover_meets_target_inside_universe(self, solver, data):
        system, p = data
        result = minimum_subset_cover(system, p, solver=solver)
        assert result.feasible
        assert result.covered_weight >= p
        assert result.cover <= system.universe
        assert result.covered_weight == system.covered_weight(result.cover)

    @given(data=systems_with_target())
    @SETTINGS
    def test_node_greedy_feasible(self, data):
        system, p = data
        result = greedy_node_cover(system, p)
        assert result.covered_weight >= p
        assert result.cover <= system.universe

    @given(system=systems())
    @SETTINGS
    def test_target_above_total_weight_rejected(self, system):
        with pytest.raises(InfeasibleCoverError):
            minimum_subset_cover(system, system.total_weight + 1)


class TestBudgetedProperties:
    @given(system=systems(), budget=st.integers(min_value=1, max_value=12))
    @SETTINGS
    def test_budget_respected_and_weight_consistent(self, system, budget):
        result = budgeted_trace_cover(system, budget)
        assert result.size <= budget
        assert result.covered_weight == system.covered_weight(result.cover)
        assert result.cover <= system.universe

    @given(system=systems())
    @SETTINGS
    def test_coverage_monotone_under_budget_increase(self, system):
        """More budget can never cover less (regression: the single-pass
        ratio greedy violated this when a large trace crowded out a cheaper
        combination at the bigger budget)."""
        previous = -1
        for budget in range(1, len(system.universe) + 2):
            covered = budgeted_trace_cover(system, budget).covered_weight
            assert covered >= previous
            previous = covered

    @given(system=systems())
    @SETTINGS
    def test_universe_budget_covers_everything(self, system):
        result = budgeted_trace_cover(system, len(system.universe))
        assert result.covered_weight == system.total_weight


class TestMpuProperties:
    @given(data=systems_with_target())
    @SETTINGS
    def test_heuristics_feasible(self, data):
        system, p = data
        deduped = system.deduplicate()
        for solver in (greedy_min_union, smallest_sets_union, chlamtac_mpu):
            result = solver(deduped, p)
            assert result.covered_weight >= p
            assert result.union == deduped.union_of(result.selected_indices)

    @given(data=systems_with_target(max_sets=6))
    @SETTINGS
    def test_exact_is_optimal_and_heuristics_respect_the_bound(self, data):
        """The greedy approximation invariant: no heuristic beats the exact
        optimum, and the Chlamtáč subroutine stays within ``2√|U|`` of it."""
        system, p = data
        deduped = system.deduplicate()
        optimum = exact_mpu(deduped, p)
        assert optimum.covered_weight >= p
        for solver in (greedy_min_union, smallest_sets_union, chlamtac_mpu):
            candidate = solver(deduped, p)
            assert candidate.union_size >= optimum.union_size
        bound = chlamtac_ratio_bound(deduped.num_sets)
        assert bound == 2.0 * math.sqrt(deduped.num_sets)
        assert chlamtac_mpu(deduped, p).union_size <= math.ceil(bound * optimum.union_size)

    @given(system=systems(max_sets=6))
    @SETTINGS
    def test_exact_optimum_monotone_in_p(self, system):
        """Covering more realizations can only need a (weakly) larger union."""
        deduped = system.deduplicate()
        previous = 0
        for p in range(1, deduped.total_weight + 1):
            union_size = exact_mpu(deduped, p).union_size
            assert union_size >= previous
            previous = union_size
