"""Tests for repro.setcover.budgeted."""

from __future__ import annotations

import random

import pytest

from repro.setcover.budgeted import budgeted_trace_cover
from repro.setcover.hypergraph import SetSystem


@pytest.fixture
def trace_system() -> SetSystem:
    return SetSystem(
        [{"t"}, {"t"}, {"t", "u"}, {"t", "u", "v"}, {"t", "w", "x"}],
    )


class TestBudgetedTraceCover:
    def test_budget_respected(self, trace_system):
        for budget in range(1, 6):
            result = budgeted_trace_cover(trace_system, budget)
            assert result.size <= budget
            assert result.budget == budget

    def test_budget_one_takes_the_duplicated_singleton(self, trace_system):
        result = budgeted_trace_cover(trace_system, 1)
        assert result.cover == frozenset({"t"})
        assert result.covered_weight == 2

    def test_budget_two_adds_the_best_second_node(self, trace_system):
        result = budgeted_trace_cover(trace_system, 2)
        assert result.cover == frozenset({"t", "u"})
        assert result.covered_weight == 3

    def test_full_budget_covers_everything(self, trace_system):
        result = budgeted_trace_cover(trace_system, 10)
        assert result.covered_weight == trace_system.total_weight

    def test_coverage_monotone_in_budget(self, trace_system):
        previous = 0
        for budget in range(1, 8):
            covered = budgeted_trace_cover(trace_system, budget).covered_weight
            assert covered >= previous
            previous = covered

    def test_covered_weight_consistent_with_system(self, trace_system):
        result = budgeted_trace_cover(trace_system, 3)
        assert result.covered_weight == trace_system.covered_weight(result.cover)

    def test_insufficient_budget_for_any_trace(self):
        system = SetSystem([{"a", "b", "c"}])
        result = budgeted_trace_cover(system, 2)
        assert result.covered_weight == 0

    def test_invalid_budget(self, trace_system):
        with pytest.raises(ValueError):
            budgeted_trace_cover(trace_system, 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_systems_feasibility(self, seed):
        rng = random.Random(seed)
        sets = [set(rng.sample(range(15), rng.randint(1, 4))) for _ in range(20)]
        system = SetSystem(sets)
        budget = rng.randint(1, 10)
        result = budgeted_trace_cover(system, budget)
        assert result.size <= budget
        assert result.covered_weight == system.covered_weight(result.cover)
