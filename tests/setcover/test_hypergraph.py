"""Tests for repro.setcover.hypergraph (SetSystem)."""

from __future__ import annotations

import pytest

from repro.diffusion.reverse_sampling import TargetPath
from repro.exceptions import SetCoverError
from repro.setcover.hypergraph import SetSystem


@pytest.fixture
def simple_system() -> SetSystem:
    return SetSystem([{"a", "b"}, {"b", "c"}, {"a"}, {"c", "d", "e"}])


class TestConstruction:
    def test_basic_counts(self, simple_system):
        assert simple_system.num_sets == 4
        assert simple_system.total_weight == 4
        assert simple_system.universe == frozenset("abcde")

    def test_weights(self):
        system = SetSystem([{"a"}, {"b"}], weights=[3, 2])
        assert system.total_weight == 5
        assert system.weight(0) == 3

    def test_weight_length_mismatch(self):
        with pytest.raises(SetCoverError):
            SetSystem([{"a"}], weights=[1, 2])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(SetCoverError):
            SetSystem([{"a"}], weights=[0])

    def test_empty_system(self):
        system = SetSystem([])
        assert system.num_sets == 0
        assert system.universe == frozenset()

    def test_indexing_and_iteration(self, simple_system):
        assert simple_system[2] == frozenset({"a"})
        assert list(simple_system)[0] == frozenset({"a", "b"})
        assert len(simple_system) == 4


class TestDerivedQuantities:
    def test_union_of(self, simple_system):
        assert simple_system.union_of([0, 2]) == frozenset({"a", "b"})

    def test_weight_of(self):
        system = SetSystem([{"a"}, {"b"}, {"c"}], weights=[2, 3, 5])
        assert system.weight_of([0, 2]) == 7

    def test_covered_indices(self, simple_system):
        assert simple_system.covered_indices({"a", "b", "c"}) == (0, 1, 2)

    def test_covered_weight_counts_multiplicity(self):
        system = SetSystem([{"a"}, {"a", "b"}], weights=[4, 1])
        assert system.covered_weight({"a"}) == 4
        assert system.covered_weight({"a", "b"}) == 5

    def test_element_frequencies(self):
        system = SetSystem([{"a", "b"}, {"b"}], weights=[2, 3])
        freq = system.element_frequencies()
        assert freq == {"a": 2, "b": 5}

    def test_inverted_index(self, simple_system):
        index = simple_system.inverted_index()
        assert set(index["a"]) == {0, 2}
        assert set(index["b"]) == {0, 1}


class TestDeduplicate:
    def test_collapses_identical_sets(self):
        system = SetSystem([{"a", "b"}, {"b", "a"}, {"c"}])
        deduped = system.deduplicate()
        assert deduped.num_sets == 2
        assert deduped.total_weight == 3

    def test_preserves_covered_weight(self):
        system = SetSystem([{"a"}, {"a"}, {"a", "b"}, {"c"}])
        deduped = system.deduplicate()
        for nodes in [{"a"}, {"a", "b"}, {"a", "b", "c"}, set()]:
            assert system.covered_weight(nodes) == deduped.covered_weight(nodes)

    def test_accumulates_existing_weights(self):
        system = SetSystem([{"a"}, {"a"}], weights=[2, 5])
        deduped = system.deduplicate()
        assert deduped.num_sets == 1
        assert deduped.weight(0) == 7


class TestFromTargetPaths:
    def test_only_type1_paths_included(self):
        paths = [
            TargetPath(nodes=frozenset({"t"}), is_type1=True, anchor="a"),
            TargetPath(nodes=frozenset({"t", "x"}), is_type1=False),
            TargetPath(nodes=frozenset({"t", "y"}), is_type1=True, anchor="a"),
        ]
        system = SetSystem.from_target_paths(paths)
        assert system.num_sets == 2
        assert system.universe == frozenset({"t", "y"})
