"""Tests for repro.setcover.mpu (Minimum p-Union solvers)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InfeasibleCoverError, SetCoverError
from repro.setcover.hypergraph import SetSystem
from repro.setcover.mpu import (
    chlamtac_mpu,
    chlamtac_ratio_bound,
    exact_mpu,
    greedy_min_union,
    local_search_improve,
    smallest_sets_union,
)


def _random_system(rng: random.Random, num_sets: int, universe_size: int, max_set_size: int) -> SetSystem:
    universe = list(range(universe_size))
    sets = []
    for _ in range(num_sets):
        size = rng.randint(1, max_set_size)
        sets.append(set(rng.sample(universe, size)))
    return SetSystem(sets)


@pytest.fixture
def overlap_system() -> SetSystem:
    """Three heavily overlapping sets plus two disjoint large ones."""
    return SetSystem(
        [
            {"a", "b"},
            {"b", "c"},
            {"a", "c"},
            {"x", "y", "z", "w"},
            {"p", "q", "r", "s"},
        ]
    )


class TestGreedyMinUnion:
    def test_prefers_overlapping_sets(self, overlap_system):
        result = greedy_min_union(overlap_system, 3)
        assert result.union == frozenset({"a", "b", "c"})
        assert result.covered_weight == 3

    def test_single_set(self, overlap_system):
        result = greedy_min_union(overlap_system, 1)
        assert result.union_size == 2

    def test_weighted_sets_count_multiplicity(self):
        system = SetSystem([{"a", "b"}, {"c"}], weights=[5, 1])
        result = greedy_min_union(system, 5)
        assert result.union == frozenset({"a", "b"})

    def test_multiplicity_preference_can_be_disabled(self):
        system = SetSystem([{"a", "b", "c"}, {"d"}], weights=[10, 1])
        ratio = greedy_min_union(system, 1, prefer_multiplicity=True)
        plain = greedy_min_union(system, 1, prefer_multiplicity=False)
        # With multiplicity preference the big heavy set wins (0.3 < 1);
        # without it the singleton wins.
        assert ratio.union == frozenset({"a", "b", "c"})
        assert plain.union == frozenset({"d"})

    def test_infeasible_target(self, overlap_system):
        with pytest.raises(InfeasibleCoverError):
            greedy_min_union(overlap_system, 99)

    def test_invalid_target(self, overlap_system):
        with pytest.raises(ValueError):
            greedy_min_union(overlap_system, 0)

    def test_result_is_feasible_on_random_systems(self):
        rng = random.Random(1)
        for _ in range(10):
            system = _random_system(rng, 30, 20, 5)
            p = rng.randint(1, 30)
            result = greedy_min_union(system, p)
            assert result.covered_weight >= p
            assert result.union == system.union_of(result.selected_indices)


class TestSmallestSets:
    def test_picks_smallest_cardinality_first(self, overlap_system):
        result = smallest_sets_union(overlap_system, 1)
        assert result.union_size == 2

    def test_accumulates_until_target(self, overlap_system):
        result = smallest_sets_union(overlap_system, 4)
        assert result.covered_weight >= 4

    def test_infeasible(self, overlap_system):
        with pytest.raises(InfeasibleCoverError):
            smallest_sets_union(overlap_system, 6)


class TestLocalSearch:
    def test_never_worsens(self):
        rng = random.Random(5)
        for _ in range(5):
            system = _random_system(rng, 15, 12, 4)
            p = rng.randint(2, 10)
            base = smallest_sets_union(system, p)
            improved = local_search_improve(system, p, base, max_rounds=3)
            assert improved.union_size <= base.union_size
            assert improved.covered_weight >= p

    def test_finds_obvious_swap(self):
        system = SetSystem([{"a", "b", "c", "d"}, {"x"}, {"y"}, {"x", "y"}])
        # Start from the large set plus one singleton; swapping the large
        # set for the other singleton shrinks the union.
        from repro.setcover.mpu import MpUResult

        start = MpUResult(selected_indices=(0, 1), union=frozenset("abcdx"), covered_weight=2)
        improved = local_search_improve(system, 2, start)
        assert improved.union_size <= 2


class TestChlamtacMpu:
    def test_at_least_as_good_as_both_candidates(self):
        rng = random.Random(9)
        for _ in range(8):
            system = _random_system(rng, 25, 18, 5)
            p = rng.randint(2, 20)
            combined = chlamtac_mpu(system, p)
            greedy = greedy_min_union(system, p)
            smallest = smallest_sets_union(system, p)
            assert combined.union_size <= min(greedy.union_size, smallest.union_size)
            assert combined.covered_weight >= p

    def test_solver_name_recorded(self, overlap_system):
        assert chlamtac_mpu(overlap_system, 2).solver.startswith("chlamtac")

    def test_ratio_bound(self):
        assert chlamtac_ratio_bound(25) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            chlamtac_ratio_bound(0)


class TestExactMpu:
    def test_simple_instance(self, overlap_system):
        result = exact_mpu(overlap_system, 3)
        assert result.union == frozenset({"a", "b", "c"})

    def test_weighted_optimum_may_use_many_small_sets(self):
        # One heavy large set vs two light small ones: covering weight 2 is
        # cheapest with the two singletons.
        system = SetSystem([{"a", "b", "c", "d"}, {"x"}, {"x", "y"}], weights=[2, 1, 1])
        result = exact_mpu(system, 2)
        assert result.union == frozenset({"x", "y"})

    def test_refuses_large_instances(self):
        system = SetSystem([{i} for i in range(30)])
        with pytest.raises(SetCoverError):
            exact_mpu(system, 2)

    def test_infeasible(self):
        with pytest.raises(InfeasibleCoverError):
            exact_mpu(SetSystem([{"a"}]), 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_heuristics_never_beat_exact(self, seed):
        rng = random.Random(seed)
        system = _random_system(rng, 10, 10, 4)
        p = rng.randint(1, 8)
        optimal = exact_mpu(system, p)
        for heuristic in (greedy_min_union, smallest_sets_union, chlamtac_mpu):
            result = heuristic(system, p)
            assert result.union_size >= optimal.union_size

    @pytest.mark.parametrize("seed", range(6))
    def test_chlamtac_within_theoretical_ratio(self, seed):
        """The practical solver easily satisfies the 2*sqrt(|U|) bound on small instances."""
        rng = random.Random(100 + seed)
        system = _random_system(rng, 12, 10, 4)
        p = rng.randint(1, 10)
        optimal = exact_mpu(system, p)
        result = chlamtac_mpu(system, p)
        assert result.union_size <= chlamtac_ratio_bound(system.num_sets) * max(1, optimal.union_size)

    def test_exact_matches_brute_force_enumeration(self):
        rng = random.Random(77)
        system = _random_system(rng, 8, 8, 3)
        p = 4
        from itertools import combinations

        best = None
        for size in range(1, 9):
            for combo in combinations(range(8), size):
                if system.weight_of(combo) >= p:
                    union_size = len(system.union_of(combo))
                    best = union_size if best is None else min(best, union_size)
        assert exact_mpu(system, p).union_size == best
