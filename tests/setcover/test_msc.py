"""Tests for repro.setcover.msc (Minimum Subset Cover via the MpU reduction)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InfeasibleCoverError, SetCoverError
from repro.setcover.hypergraph import SetSystem
from repro.setcover.msc import MSC_SOLVERS, greedy_node_cover, minimum_subset_cover
from repro.setcover.mpu import exact_mpu


def _random_system(rng: random.Random, num_sets: int, universe_size: int, max_set_size: int) -> SetSystem:
    universe = list(range(universe_size))
    sets = []
    for _ in range(num_sets):
        size = rng.randint(1, max_set_size)
        sets.append(set(rng.sample(universe, size)))
    return SetSystem(sets)


@pytest.fixture
def trace_like_system() -> SetSystem:
    """Looks like a sampled trace family: short overlapping paths ending at 't'."""
    return SetSystem(
        [
            {"t"},
            {"t"},
            {"t", "u"},
            {"t", "u", "v"},
            {"t", "w"},
            {"t", "w", "x"},
        ]
    )


class TestMinimumSubsetCover:
    def test_cover_is_feasible(self, trace_like_system):
        result = minimum_subset_cover(trace_like_system, 4)
        assert result.feasible
        assert result.covered_weight >= 4
        assert trace_like_system.covered_weight(result.cover) == result.covered_weight

    def test_small_target_covered_by_target_node_alone(self, trace_like_system):
        result = minimum_subset_cover(trace_like_system, 2)
        assert result.cover == frozenset({"t"})

    def test_duplicates_covered_together(self, trace_like_system):
        # Covering {t} covers both duplicate singleton traces at once.
        result = minimum_subset_cover(trace_like_system, 2)
        assert result.covered_weight == 2

    @pytest.mark.parametrize("solver", sorted(MSC_SOLVERS))
    def test_all_named_solvers_produce_feasible_covers(self, solver, trace_like_system):
        result = minimum_subset_cover(trace_like_system, 5, solver=solver)
        assert result.feasible
        assert result.solver == solver

    def test_callable_solver(self, trace_like_system):
        result = minimum_subset_cover(trace_like_system, 3, solver=exact_mpu)
        assert result.feasible
        assert result.solver == "exact_mpu"

    def test_unknown_solver_rejected(self, trace_like_system):
        with pytest.raises(SetCoverError):
            minimum_subset_cover(trace_like_system, 2, solver="magic")

    def test_infeasible_target(self, trace_like_system):
        with pytest.raises(InfeasibleCoverError):
            minimum_subset_cover(trace_like_system, 7)

    def test_invalid_target(self, trace_like_system):
        with pytest.raises(ValueError):
            minimum_subset_cover(trace_like_system, 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_chlamtac_cover_not_larger_than_exact_by_ratio(self, seed):
        rng = random.Random(seed)
        system = _random_system(rng, 10, 10, 4)
        p = rng.randint(1, 8)
        exact = minimum_subset_cover(system, p, solver="exact")
        approx = minimum_subset_cover(system, p, solver="chlamtac")
        assert approx.size >= exact.size or approx.size == exact.size
        assert approx.size <= 2 * (system.num_sets**0.5) * max(1, exact.size)

    def test_result_properties(self, trace_like_system):
        result = minimum_subset_cover(trace_like_system, 3)
        assert result.size == len(result.cover)
        assert result.requested == 3


class TestGreedyNodeCover:
    def test_feasible(self, trace_like_system):
        result = greedy_node_cover(trace_like_system, 5)
        assert result.covered_weight >= 5

    def test_singleton_covered_first(self, trace_like_system):
        result = greedy_node_cover(trace_like_system, 2)
        assert result.cover == frozenset({"t"})

    def test_infeasible(self, trace_like_system):
        with pytest.raises(InfeasibleCoverError):
            greedy_node_cover(trace_like_system, 10)

    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_on_random_systems(self, seed):
        rng = random.Random(seed)
        system = _random_system(rng, 20, 15, 4)
        p = rng.randint(1, 15)
        result = greedy_node_cover(system, p)
        assert system.covered_weight(result.cover) >= p

    def test_comparable_to_mpu_route_on_trace_systems(self, trace_like_system):
        via_mpu = minimum_subset_cover(trace_like_system, 5, solver="chlamtac")
        via_nodes = greedy_node_cover(trace_like_system, 5)
        # Neither dominates in general; both must be feasible and small here.
        assert via_mpu.size <= 4
        assert via_nodes.size <= 4
