"""Shared fixtures for the query-service suite.

The concurrency tests never rely on sleeps or timing: a :class:`GatedEngine`
blocks the leader *inside* its sampling call until the test releases it, so
"a duplicate arrived while the original was in flight" is a constructed
fact, not a race that usually happens.
"""

from __future__ import annotations

import threading

import pytest

from repro.diffusion.engine import create_engine
from repro.graph.generators import barabasi_albert_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights
from repro.service.loadgen import candidate_pairs


class GatedEngine:
    """A sampling engine whose draws block until the test releases them.

    ``entered`` is set when a sampling call reaches the engine (the leader
    is now provably in flight); ``release`` lets it proceed.  Results are
    exactly the wrapped engine's, so bit-identity assertions still hold.
    """

    name = "gated"

    def __init__(self, base):
        self.base = base
        self.entered = threading.Event()
        self.release = threading.Event()

    @property
    def compiled(self):
        return self.base.compiled

    def sample_path(self, target, stop_set, rng=None):
        return self.sample_paths(target, stop_set, 1, rng=rng)[0]

    def sample_paths(self, target, stop_set, count, rng=None):
        self.entered.set()
        assert self.release.wait(timeout=30.0), "test never released the gated engine"
        return self.base.sample_paths(target, stop_set, count, rng=rng)


@pytest.fixture(scope="module")
def service_graph():
    return apply_degree_normalized_weights(barabasi_albert_graph(300, 4, rng=17))


@pytest.fixture(scope="module")
def hot_pair(service_graph):
    (pair,) = candidate_pairs(service_graph, 1, rng=3)
    return pair


@pytest.fixture
def gate_engine():
    """Factory building a gated engine over any graph."""

    def make(graph):
        return GatedEngine(create_engine(graph, "python"))

    return make


@pytest.fixture
def gated_engine(gate_engine, service_graph):
    return gate_engine(service_graph)


@pytest.fixture
def unreachable_graph():
    """Two components: the target's island is unreachable from the source's."""
    graph = SocialGraph.from_edges(
        [("s", "a"), ("a", "b"), ("t", "x"), ("x", "y"), ("y", "t")]
    )
    return apply_degree_normalized_weights(graph)
