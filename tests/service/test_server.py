"""Tests for the asyncio socket/HTTP front end (repro.service.server).

Everything here is deterministic: concurrency facts are constructed with
the gate-blocked engine (a request is *provably* in flight because its
sampling call is blocked inside the engine), budgets run on an injected
fake clock, and byte-identity is asserted against standalone fresh-pool
runs -- never against another timing-dependent arm.  The only real time
used is the deadline test's ``wait_for`` timeout, whose *outcome* is
forced (the gate never releases before expiry), not raced.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import ServiceClosedError, ServiceError
from repro.service.loadgen import query_to_wire, run_standalone
from repro.service.query_service import EvaluateQuery, MaximizeQuery, PmaxQuery
from repro.service.server import QueryServer, TokenBucket, serve_forever

POOL_SEED = 91


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def run(coro, timeout: float = 60.0):
    """Run a test coroutine with a global watchdog (hangs fail, not block)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _connect(server: QueryServer):
    return await asyncio.open_connection(server.host, server.port)


async def _rpc(streams, payload: dict) -> dict:
    """One JSON-lines request/response on an open connection."""
    reader, writer = streams
    writer.write(json.dumps(payload).encode("utf-8") + b"\n")
    await writer.drain()
    line = await reader.readline()
    assert line, "server closed the connection instead of answering"
    return json.loads(line)


async def _close(streams) -> None:
    _, writer = streams
    writer.close()


async def _http(server: QueryServer, method: str, path: str, body: dict | None = None):
    """One HTTP/1.1 exchange; returns (status, parsed JSON body)."""
    reader, writer = await _connect(server)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n".encode("latin-1")
        + payload
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    document = json.loads(await reader.readexactly(length)) if length else {}
    writer.close()
    return status, document


@pytest.fixture(scope="module")
def wire_queries(hot_pair):
    """Three cheap hot queries (one per kind) over the screened pair."""
    source, target = hot_pair
    return (
        PmaxQuery(source=source, target=target, epsilon=0.5,
                  confidence_n=50.0, max_samples=2_000),
        EvaluateQuery(source=source, target=target,
                      invitation=frozenset({target}), num_samples=48),
        MaximizeQuery(source=source, target=target, budget=2, num_realizations=200),
    )


@pytest.fixture(scope="module")
def standalone_answers(service_graph, wire_queries):
    """The fresh-pool reference answer for every hot query."""
    return {
        query: run_standalone(service_graph, query, POOL_SEED)
        for query in wire_queries
    }


class TestTokenBucket:
    def test_starts_full_and_never_blocks(self):
        clock = FakeClock()
        bucket = TokenBucket(100, 0.0, clock=clock)
        assert bucket.try_acquire(100)
        assert not bucket.try_acquire(1)

    def test_refills_at_rate_capped_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(100, 50.0, clock=clock)
        assert bucket.try_acquire(80)
        assert bucket.tokens == pytest.approx(20.0)
        clock.advance(1.0)
        assert bucket.tokens == pytest.approx(70.0)
        clock.advance(10.0)
        assert bucket.tokens == pytest.approx(100.0)  # capped, not 570
        assert bucket.try_acquire(100)

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(10, 0.0, clock=clock)
        assert bucket.try_acquire(10)
        clock.advance(1e6)
        assert not bucket.try_acquire(1)

    def test_cost_beyond_capacity_is_always_refused(self):
        bucket = TokenBucket(10, 5.0, clock=FakeClock())
        assert not bucket.try_acquire(11)
        assert bucket.tokens == pytest.approx(10.0)  # refusal does not charge


class TestJsonlProtocol:
    def test_roundtrip_echoes_id_and_matches_standalone(
        self, service_graph, wire_queries, standalone_answers
    ):
        query = wire_queries[1]

        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                streams = await _connect(server)
                response = await _rpc(
                    streams, {**query_to_wire(query), "id": "req-1", "tenant": "acme"}
                )
                await _close(streams)
                return response

        response = run(main())
        assert response["ok"] is True
        assert response["op"] == "evaluate"
        assert response["id"] == "req-1"
        assert json.dumps(response["result"], sort_keys=True) == standalone_answers[query]

    def test_eight_clients_interleaved_tenants_byte_identical(
        self, service_graph, wire_queries, standalone_answers
    ):
        """The acceptance bar: >=8 concurrent sockets, two tenants, every
        answer byte-identical to a standalone fresh-pool run."""

        async def client(server, index):
            tenant = "alpha" if index % 2 == 0 else "beta"
            streams = await _connect(server)
            answers = []
            for turn in range(2):
                query = wire_queries[(index + turn) % len(wire_queries)]
                response = await _rpc(
                    streams, {**query_to_wire(query), "tenant": tenant, "id": index}
                )
                answers.append((query, response))
            await _close(streams)
            return answers

        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                results = await asyncio.gather(
                    *(client(server, index) for index in range(8))
                )
                stats = server.stats()
                return results, stats

        results, stats = run(main())
        checked = 0
        for answers in results:
            for query, response in answers:
                assert response["ok"] is True
                observed = json.dumps(response["result"], sort_keys=True)
                assert observed == standalone_answers[query]
                checked += 1
        assert checked == 16
        assert sorted(stats["tenants"]) == ["alpha", "beta"]
        assert stats["server"]["connections_total"] == 8
        # Per-tenant reconciliation still holds behind the wire.
        for row in stats["tenants"].values():
            assert row["requests"] == row["executed"] + row["coalesced"] + row["rejected"]

    def test_pipelined_responses_come_back_in_request_order(
        self, service_graph, wire_queries
    ):
        async def main():
            async with QueryServer(
                service_graph, seed=POOL_SEED, connection_window=2
            ) as server:
                reader, writer = await _connect(server)
                for index in range(4):
                    query = wire_queries[index % len(wire_queries)]
                    writer.write(
                        json.dumps({**query_to_wire(query), "id": index}).encode() + b"\n"
                    )
                await writer.drain()
                responses = [json.loads(await reader.readline()) for _ in range(4)]
                writer.close()
                return responses

        responses = run(main())
        assert [response["id"] for response in responses] == [0, 1, 2, 3]
        assert all(response["ok"] for response in responses)

    def test_stats_is_a_barrier_with_server_and_tenant_sections(
        self, service_graph, wire_queries
    ):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                streams = await _connect(server)
                await _rpc(streams, query_to_wire(wire_queries[1]))
                stats = await _rpc(streams, {"op": "stats"})
                await _close(streams)
                return stats

        stats = run(main())
        assert stats["ok"] is True and stats["op"] == "stats"
        assert stats["result"]["server"]["requests_total"] == 1
        assert stats["result"]["tenants"]["default"]["requests"] == 1

    @pytest.mark.parametrize(
        "line",
        [
            b"this is not json\n",
            b"[1, 2, 3]\n",
            b'{"op": "frobnicate"}\n',
            b'{"op": "evaluate", "source": 1, "target": 2, "tenant": ""}\n',
            b'{"op": "evaluate", "source": 1, "target": 2, "priority": "urgent"}\n',
            b'{"op": "evaluate", "source": 1, "target": 2, "deadline_ms": -5}\n',
            b'{"op": "evaluate", "source": 1, "target": 2, "deadline_ms": true}\n',
            b'{"op": "evaluate", "source": 1, "num_samples": 48}\n',
        ],
    )
    def test_malformed_requests_answer_then_close(self, service_graph, line):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                reader, writer = await _connect(server)
                writer.write(line)
                await writer.drain()
                response = json.loads(await reader.readline())
                trailing = await reader.readline()  # connection-fatal: EOF
                writer.close()
                stats = server.stats()
                return response, trailing, stats

        response, trailing, stats = run(main())
        assert response["ok"] is False
        assert response["error_type"] == "malformed"
        assert trailing == b""
        assert stats["server"]["malformed_total"] == 1

    def test_blank_lines_are_skipped(self, service_graph, wire_queries):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                reader, writer = await _connect(server)
                writer.write(b"\n\n" + json.dumps(query_to_wire(wire_queries[1])).encode() + b"\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                return response

        assert run(main())["ok"] is True

    def test_unknown_tenant_limit_is_a_refusal_not_a_close(self, service_graph, wire_queries):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED, max_tenants=1) as server:
                streams = await _connect(server)
                first = await _rpc(streams, {**query_to_wire(wire_queries[1]), "tenant": "a"})
                second = await _rpc(streams, {**query_to_wire(wire_queries[1]), "tenant": "b"})
                third = await _rpc(streams, {**query_to_wire(wire_queries[1]), "tenant": "a"})
                await _close(streams)
                return first, second, third

        first, second, third = run(main())
        assert first["ok"] is True
        assert second["ok"] is False and second["error_type"] == "rejected"
        assert third["ok"] is True  # the session survives the refusal


class TestHttp:
    def test_post_query_matches_standalone(
        self, service_graph, wire_queries, standalone_answers
    ):
        query = wire_queries[1]

        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                return await _http(server, "POST", "/query", query_to_wire(query))

        status, document = run(main())
        assert status == 200
        assert document["ok"] is True
        assert json.dumps(document["result"], sort_keys=True) == standalone_answers[query]

    def test_healthz_and_stats(self, service_graph):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                health = await _http(server, "GET", "/healthz")
                stats = await _http(server, "GET", "/stats")
                return health, stats

        (health_status, health), (stats_status, stats) = run(main())
        assert health_status == 200 and health["ok"] is True
        assert health["status"] == "serving"
        assert stats_status == 200 and "server" in stats["result"]

    def test_unknown_path_and_method(self, service_graph):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                missing = await _http(server, "GET", "/nope")
                wrong = await _http(server, "POST", "/healthz")
                return missing, wrong

        (missing_status, _), (wrong_status, _) = run(main())
        assert missing_status == 404
        assert wrong_status == 405

    def test_budget_exhaustion_maps_to_429(self, service_graph, wire_queries):
        query = wire_queries[1]  # costs 48 sample units

        async def main():
            clock = FakeClock()
            async with QueryServer(
                service_graph, seed=POOL_SEED, tenant_burst=50, clock=clock
            ) as server:
                first = await _http(server, "POST", "/query", query_to_wire(query))
                second = await _http(server, "POST", "/query", query_to_wire(query))
                return first, second

        (first_status, first), (second_status, second) = run(main())
        assert first_status == 200 and first["ok"] is True
        assert second_status == 429
        assert second["error_type"] == "budget"


class TestBudgets:
    def test_token_bucket_refuses_then_refills_on_the_injected_clock(
        self, service_graph, wire_queries, standalone_answers
    ):
        query = wire_queries[1]  # sample_cost 48

        async def main():
            clock = FakeClock()
            async with QueryServer(
                service_graph, seed=POOL_SEED, tenant_burst=50, tenant_rate=25.0,
                clock=clock,
            ) as server:
                streams = await _connect(server)
                first = await _rpc(streams, query_to_wire(query))
                refused = await _rpc(streams, query_to_wire(query))  # 2 tokens left
                clock.advance(2.0)  # +50 tokens -> capped at 50 >= 48
                refilled = await _rpc(streams, query_to_wire(query))
                stats = await _rpc(streams, {"op": "stats"})
                await _close(streams)
                return first, refused, refilled, stats["result"]

        first, refused, refilled, stats = run(main())
        assert first["ok"] is True
        assert refused["ok"] is False and refused["error_type"] == "budget"
        assert refilled["ok"] is True
        # A budget refusal changes cost and availability, never answers:
        for response in (first, refilled):
            assert json.dumps(response["result"], sort_keys=True) == standalone_answers[query]
        assert stats["server"]["budget_rejected_total"] == 1
        assert stats["tenants"]["default"]["budget_rejected"] == 1
        assert stats["tenants"]["default"]["tokens"] == pytest.approx(2.0)

    def test_budgets_are_per_tenant(self, service_graph, wire_queries):
        query = wire_queries[1]

        async def main():
            async with QueryServer(
                service_graph, seed=POOL_SEED, tenant_burst=50, clock=FakeClock()
            ) as server:
                streams = await _connect(server)
                await _rpc(streams, {**query_to_wire(query), "tenant": "a"})
                refused = await _rpc(streams, {**query_to_wire(query), "tenant": "a"})
                other = await _rpc(streams, {**query_to_wire(query), "tenant": "b"})
                await _close(streams)
                return refused, other

        refused, other = run(main())
        assert refused["error_type"] == "budget"
        assert other["ok"] is True  # tenant b has its own full bucket


class TestDeadlinesAndPriority:
    def test_deadline_expiry_cancels_cleanly_and_pool_survives(
        self, service_graph, gated_engine, wire_queries, standalone_answers
    ):
        query = wire_queries[1]

        async def main():
            async with QueryServer(
                service_graph, engine=gated_engine, seed=POOL_SEED
            ) as server:
                streams = await _connect(server)
                # The gate guarantees the execution cannot finish before the
                # deadline: the expiry outcome is forced, not raced.
                expired = await _rpc(
                    streams, {**query_to_wire(query), "deadline_ms": 100}
                )
                gated_engine.release.set()
                # The detached execution finishes on its worker thread and
                # warms the pool; the pool lock is provably not poisoned
                # because the retry answers -- byte-identically.
                retry = await _rpc(streams, query_to_wire(query))
                stats = await _rpc(streams, {"op": "stats"})
                await _close(streams)
                return expired, retry, stats["result"]

        expired, retry, stats = run(main())
        assert expired["ok"] is False
        assert expired["error_type"] == "deadline"
        assert retry["ok"] is True
        assert json.dumps(retry["result"], sort_keys=True) == standalone_answers[query]
        assert stats["server"]["deadline_expired_total"] == 1

    def test_default_deadline_applies_when_request_has_none(
        self, service_graph, gated_engine, wire_queries
    ):
        async def main():
            async with QueryServer(
                service_graph, engine=gated_engine, seed=POOL_SEED,
                default_deadline_ms=100,
            ) as server:
                streams = await _connect(server)
                expired = await _rpc(streams, query_to_wire(wire_queries[1]))
                gated_engine.release.set()
                await _close(streams)
                return expired

        expired = run(main())
        assert expired["error_type"] == "deadline"

    def test_low_priority_is_shed_under_load_and_healthz_still_answers(
        self, service_graph, gated_engine, wire_queries
    ):
        async def main():
            async with QueryServer(
                service_graph, engine=gated_engine, seed=POOL_SEED, max_in_flight=2
            ) as server:
                blocked = await _connect(server)
                _, blocked_writer = blocked
                blocked_writer.write(
                    json.dumps(query_to_wire(wire_queries[1])).encode() + b"\n"
                )
                await blocked_writer.drain()
                # The request is provably in flight: its sampling call has
                # entered the gated engine and is blocked there.
                assert await asyncio.to_thread(gated_engine.entered.wait, 30.0)

                low = await _connect(server)
                shed = await _rpc(
                    low, {**query_to_wire(wire_queries[2]), "priority": "low"}
                )
                await _close(low)

                health_status, health = await _http(server, "GET", "/healthz")

                gated_engine.release.set()
                blocked_response = json.loads(await blocked[0].readline())
                stats = server.stats()
                blocked_writer.close()
                return shed, health_status, health, blocked_response, stats

        shed, health_status, health, blocked_response, stats = run(main())
        assert shed["ok"] is False
        assert shed["error_type"] == "overloaded"
        assert health_status == 200 and health["ok"] is True
        assert health["in_flight"] >= 1
        assert blocked_response["ok"] is True
        assert stats["server"]["priority_rejected_total"] == 1

    def test_low_priority_admitted_when_idle(self, service_graph, wire_queries):
        async def main():
            async with QueryServer(
                service_graph, seed=POOL_SEED, max_in_flight=2
            ) as server:
                streams = await _connect(server)
                response = await _rpc(
                    streams, {**query_to_wire(wire_queries[1]), "priority": "low"}
                )
                await _close(streams)
                return response

        assert run(main())["ok"] is True


class TestLifecycle:
    def test_server_refuses_double_start(self, service_graph):
        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED) as server:
                with pytest.raises(ServiceError):
                    await server.start()

        run(main())

    def test_constructor_validation(self, service_graph):
        with pytest.raises(ValueError):
            QueryServer(service_graph, tenant_rate=5.0)  # rate without burst
        with pytest.raises(ValueError):
            QueryServer(service_graph, connection_window=0)
        with pytest.raises(ValueError):
            QueryServer(service_graph, max_tenants=0)

    def test_serve_forever_announces_and_reports_on_cancel(self, service_graph):
        async def main():
            messages: list[str] = []
            seen: list[dict] = []
            task = asyncio.ensure_future(serve_forever(
                service_graph, seed=POOL_SEED, echo=messages.append,
                on_shutdown=seen.append,
            ))
            for _ in range(10_000):
                if messages:
                    break
                await asyncio.sleep(0)
            assert messages and messages[0].startswith("listening on ")
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return seen

        seen = run(main())
        assert len(seen) == 1 and "server" in seen[0]


class TestShutdownRace:
    def test_submission_racing_aclose_gets_typed_closed_error(
        self, service_graph, gated_engine, wire_queries
    ):
        """A request arriving while the server drains must get error_type
        'closed' (typed), not hang on a torn-down executor."""

        async def main():
            server = QueryServer(
                service_graph, engine=gated_engine, seed=POOL_SEED
            )
            await server.start()
            streams = await _connect(server)
            reader, writer = streams
            writer.write(json.dumps(query_to_wire(wire_queries[1])).encode() + b"\n")
            await writer.drain()
            assert await asyncio.to_thread(gated_engine.entered.wait, 30.0)
            # Drain starts: _closing flips synchronously, then aclose blocks
            # on the gated execution -- release it so teardown completes.
            closing = asyncio.ensure_future(server.aclose())
            await asyncio.sleep(0)
            assert server.health()["status"] == "closing"
            wire = query_to_wire(wire_queries[2])
            envelope = server._parse_envelope(wire)  # noqa: SLF001 - gate under test
            with pytest.raises(ServiceClosedError):
                server._admit(envelope, wire)  # noqa: SLF001
            gated_engine.release.set()
            await closing
            writer.close()

        run(main())


class TestDegradedMode:
    """Degraded-to-serial engines surface through /healthz and /stats."""

    def test_health_and_stats_surface_engine_degradation(self, service_graph, hot_pair):
        from repro.faults import FaultPlan

        source, target = hot_pair

        async def main():
            async with QueryServer(service_graph, seed=POOL_SEED, workers=2) as server:
                _, before = await _http(server, "GET", "/healthz")
                service = server.tenant_service("default")
                engine = service.pool.engine
                assert service.degraded is False
                # Exhaust the retry budget for real: every dispatched chunk
                # kills its worker until the engine gives up and goes serial.
                engine.inject_faults(FaultPlan(kill_rate=1.0))
                stop = service_graph.neighbor_set(source)
                await asyncio.to_thread(
                    engine.sample_paths, target, stop, 2 * engine.chunk_size
                )
                engine.inject_faults(None)
                _, after = await _http(server, "GET", "/healthz")
                _, stats = await _http(server, "GET", "/stats")
                return before, after, stats

        before, after, stats = run(main(), timeout=120.0)
        assert before["degraded"] is False
        assert after["degraded"] is True
        assert after["ok"] is True  # degraded is an alert, not an outage
        assert stats["result"]["server"]["degraded"] is True
        assert stats["result"]["tenants"]["default"]["degraded"] is True

    def test_fault_plan_threads_through_to_tenant_services(self, service_graph):
        from repro.faults import SITE_SPILL_IO, FaultPlan

        plan = FaultPlan(5, spill_fail_rate=1.0)

        async def main():
            async with QueryServer(
                service_graph, seed=POOL_SEED, fault_plan=plan
            ) as server:
                service = server.tenant_service("default")
                return service.pool

        pool = run(main())
        assert pool._fault_plan is plan
        assert plan.injected(SITE_SPILL_IO) == 0  # nothing spilled yet
