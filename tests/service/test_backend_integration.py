"""The service as an execution backend for run_raf and the harness."""

from __future__ import annotations

import pytest

from repro.core.parameters import SamplePolicy
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, run_raf
from repro.diffusion.engine import create_engine
from repro.exceptions import AlgorithmError, ExperimentError
from repro.experiments.harness import evaluate_invitation, growth_curve
from repro.pool.sample_pool import SamplePool
from repro.service import QueryService

POOL_SEED = 91


@pytest.fixture(scope="module")
def problem(service_graph, hot_pair):
    source, target = hot_pair
    return ActiveFriendingProblem(service_graph, source, target, alpha=0.2)


@pytest.fixture(scope="module")
def raf_config():
    return RAFConfig(
        epsilon=0.02,
        sample_policy=SamplePolicy.FIXED,
        fixed_realizations=800,
        pmax_epsilon=0.3,
        confidence_n=100.0,
        pmax_max_samples=30_000,
    )


class TestRunRafBackend:
    def test_service_run_matches_pool_run(self, service_graph, problem, raf_config):
        with QueryService(service_graph, seed=POOL_SEED) as service:
            served = run_raf(problem, raf_config, rng=1, service=service)
            metrics = service.metrics()
        pool = SamplePool(create_engine(service_graph, "python"), seed=POOL_SEED)
        direct = run_raf(problem, raf_config, rng=1, pool=pool)
        assert served.invitation == direct.invitation
        assert served.pmax_estimate == direct.pmax_estimate
        assert served.pmax_samples == direct.pmax_samples
        assert served.num_type1 == direct.num_type1
        # The pmax step went through the service (and is thus coalescible).
        assert metrics.executed == 1

    def test_repeated_runs_share_the_warm_pool(self, service_graph, problem, raf_config):
        with QueryService(service_graph, seed=POOL_SEED) as service:
            first = run_raf(problem, raf_config, rng=1, service=service)
            drawn_after_first = service.metrics().samples_drawn
            second = run_raf(problem, raf_config, rng=2, service=service)
            drawn_after_second = service.metrics().samples_drawn
        assert first.invitation == second.invitation  # pool streams, not rng
        assert drawn_after_second == drawn_after_first  # warm: nothing re-drawn

    def test_run_raf_is_safe_under_concurrent_query_traffic(
        self, service_graph, hot_pair, problem, raf_config
    ):
        """run_raf consumes the service pool under the execution lock, so
        any interleaving with concurrent query traffic yields the same
        answers as serial execution."""
        import threading

        from repro.service import EvaluateQuery, canonical_result, run_standalone

        source, target = hot_pair
        queries = [
            EvaluateQuery(source, target, invitation=frozenset({n, target}), num_samples=200)
            for n in range(10)
        ]
        with QueryService(service_graph, seed=POOL_SEED) as service:
            answers: list = []
            traffic = threading.Thread(
                target=lambda: answers.extend(service.submit(q) for q in queries)
            )
            traffic.start()
            served = run_raf(problem, raf_config, rng=1, service=service)
            traffic.join(timeout=60.0)
        pool = SamplePool(create_engine(service_graph, "python"), seed=POOL_SEED)
        direct = run_raf(problem, raf_config, rng=1, pool=pool)
        assert served.invitation == direct.invitation
        assert served.pmax_estimate == direct.pmax_estimate
        for query, answer in zip(queries, answers):
            assert canonical_result(answer) == run_standalone(
                service_graph, query, POOL_SEED
            )

    def test_pool_and_service_are_mutually_exclusive(
        self, service_graph, problem, raf_config
    ):
        pool = SamplePool(create_engine(service_graph, "python"), seed=POOL_SEED)
        with QueryService(service_graph, seed=POOL_SEED) as service:
            with pytest.raises(AlgorithmError):
                run_raf(problem, raf_config, rng=1, pool=pool, service=service)

    def test_service_on_a_different_graph_rejected_up_front(
        self, unreachable_graph, problem, raf_config
    ):
        """A service answers against its own graph, so a problem on another
        graph must fail loudly before any samples are burnt."""
        with QueryService(unreachable_graph, seed=POOL_SEED) as service:
            with pytest.raises(AlgorithmError):
                run_raf(problem, raf_config, rng=1, service=service)
            assert service.metrics().requests == 0


class TestHarnessBackend:
    def test_evaluate_invitation_matches_pool_path(self, service_graph, hot_pair):
        source, target = hot_pair
        invitation = frozenset(range(30)) | {target}
        pool = SamplePool(create_engine(service_graph, "python"), seed=POOL_SEED)
        direct = evaluate_invitation(
            service_graph, source, target, invitation, num_samples=400, pool=pool
        )
        with QueryService(service_graph, seed=POOL_SEED) as service:
            served = evaluate_invitation(
                service_graph, source, target, invitation, num_samples=400, service=service
            )
        assert served == direct

    def test_growth_curve_through_the_service(self, service_graph, problem):
        ranking = sorted(service_graph.node_list())[:30]
        pool = SamplePool(create_engine(service_graph, "python"), seed=POOL_SEED)
        direct = growth_curve(problem, ranking, 0.9, num_samples=200, pool=pool)
        with QueryService(service_graph, seed=POOL_SEED) as service:
            served = growth_curve(problem, ranking, 0.9, num_samples=200, service=service)
        assert served == direct

    def test_foreign_graph_rejected(self, service_graph, unreachable_graph):
        with QueryService(unreachable_graph, seed=POOL_SEED) as service:
            with pytest.raises(ExperimentError):
                evaluate_invitation(
                    service_graph, 0, 1, {1}, num_samples=10, service=service
                )
