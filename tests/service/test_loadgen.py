"""Tests for the deterministic load generator (repro.service.loadgen)."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    QueryService,
    candidate_pairs,
    canonical_result,
    generate_schedule,
    hot_queries,
    run_load,
    run_load_benchmark,
    run_standalone,
)
from repro.service.loadgen import (
    query_to_wire,
    run_socket_load,
    run_streaming_load,
    streaming_edge_arrivals,
)
from repro.service.query_service import EvaluateQuery, MaximizeQuery, PmaxQuery


@pytest.fixture(scope="module")
def pairs(service_graph):
    return candidate_pairs(service_graph, 2, rng=5)


@pytest.fixture(scope="module")
def hot(service_graph, pairs):
    return hot_queries(
        service_graph, pairs, rng=5,
        eval_samples=300, pmax_max_samples=20_000, maximize_realizations=400,
    )


class TestDeterministicInputs:
    def test_candidate_pairs_are_a_pure_function_of_the_seed(self, service_graph):
        assert candidate_pairs(service_graph, 2, rng=5) == candidate_pairs(
            service_graph, 2, rng=5
        )
        assert candidate_pairs(service_graph, 2, rng=5) != candidate_pairs(
            service_graph, 2, rng=6
        )

    def test_candidate_pairs_are_valid(self, service_graph, pairs):
        for source, target in pairs:
            assert source != target
            assert not service_graph.has_edge(source, target)

    def test_candidate_pairs_failure_is_loud(self, unreachable_graph):
        with pytest.raises(ServiceError):
            candidate_pairs(unreachable_graph, 50, rng=1, max_attempts=60)

    def test_hot_queries_cover_every_kind(self, hot, pairs):
        assert len(hot) == 3 * len(pairs)
        kinds = {type(query) for query in hot}
        assert kinds == {PmaxQuery, EvaluateQuery, MaximizeQuery}

    def test_schedule_is_a_pure_function_of_its_labels(self, hot):
        first = generate_schedule(hot, num_clients=6, rounds=3, seed=9)
        second = generate_schedule(hot, num_clients=6, rounds=3, seed=9)
        assert first == second
        assert generate_schedule(hot, num_clients=6, rounds=3, seed=10) != first
        assert len(first) == 3
        assert all(len(wave) == 6 for wave in first)
        assert all(query in hot for wave in first for query in wave)

    def test_empty_hot_set_rejected(self):
        with pytest.raises(ServiceError):
            generate_schedule([], num_clients=2, rounds=2, seed=1)


class TestLoadReplay:
    def test_transcripts_are_bit_identical_across_arms(self, service_graph, hot):
        schedule = generate_schedule(hot, num_clients=8, rounds=3, seed=11)
        with QueryService(service_graph, seed=91, coalesce=True) as on:
            coalesced = run_load(on, schedule)
        with QueryService(service_graph, seed=91, coalesce=False) as off:
            independent = run_load(off, schedule)
        assert coalesced.transcript == independent.transcript
        assert coalesced.executed < independent.executed
        assert coalesced.requests == independent.requests == 24
        assert coalesced.requests == coalesced.executed + coalesced.coalesced

    def test_replay_matches_standalone_per_query(self, service_graph, hot):
        schedule = generate_schedule(hot, num_clients=4, rounds=2, seed=12)
        with QueryService(service_graph, seed=91) as service:
            replay = run_load(service, schedule)
        for wave, answers in zip(schedule, replay.transcript):
            for query, answer in zip(wave, answers):
                assert answer == run_standalone(service_graph, query, 91)

    def test_benchmark_report_shape_and_reconciliation(self, service_graph):
        report = run_load_benchmark(
            service_graph, hot_pairs=1, num_clients=6, rounds=3,
            seed=21, pool_seed=91, verify_standalone=True,
        )
        assert report["bit_identical"] is True
        assert set(report["results"]) == {"coalesce", "no-coalesce"}
        coalesce = report["results"]["coalesce"]
        reference = report["results"]["no-coalesce"]
        assert reference["coalesce_speedup"] == 1.0
        assert coalesce["coalesce_speedup"] > 0
        assert coalesce["requests"] == coalesce["executed"] + coalesce["coalesced"]
        assert reference["coalesced"] == 0
        assert coalesce["executed"] < reference["executed"]

    def test_benchmark_counters_are_reproducible(self, service_graph):
        """Coalesce/executed counts are schedule facts, not race outcomes."""
        runs = [
            run_load_benchmark(
                service_graph, hot_pairs=1, num_clients=6, rounds=3,
                seed=21, pool_seed=91, verify_standalone=False,
            )["results"]["coalesce"]
            for _ in range(2)
        ]
        for field in ("requests", "executed", "coalesced", "coalesce_rate", "pool_hit_rate"):
            assert runs[0][field] == runs[1][field]


class TestSocketTransport:
    def test_wire_encoding_round_trips_every_query_kind(self, hot):
        for query in hot:
            wire = query_to_wire(query)
            assert wire["op"] == query.kind
            rebuilt = type(query)(**{k: v for k, v in wire.items() if k != "op"})
            assert rebuilt == query

    def test_socket_replay_is_bit_identical_to_in_process(self, service_graph, hot):
        """8 concurrent TCP clients (the acceptance bar) replaying the same
        schedule produce the same transcript as the in-process replay --
        the wire adds latency, never divergence."""
        schedule = generate_schedule(hot, num_clients=8, rounds=2, seed=13)
        with QueryService(service_graph, seed=91) as service:
            in_process = run_load(service, schedule)
        over_tcp = run_socket_load(service_graph, schedule, pool_seed=91)
        assert over_tcp.transcript == in_process.transcript
        assert over_tcp.requests == in_process.requests == 16
        assert over_tcp.requests == over_tcp.executed + over_tcp.coalesced
        assert over_tcp.latency_p50 is not None and over_tcp.latency_p50 > 0
        assert over_tcp.latency_p99 >= over_tcp.latency_p50

    def test_empty_schedule_rejected(self, service_graph):
        with pytest.raises(ServiceError):
            run_socket_load(service_graph, [], pool_seed=91)

    def test_benchmark_socket_rows_carry_tail_latency(self, service_graph):
        report = run_load_benchmark(
            service_graph, hot_pairs=1, num_clients=8, rounds=2,
            seed=21, pool_seed=91, verify_standalone=False, socket_transport=True,
        )
        assert report["bit_identical"] is True
        assert set(report["results"]) == {
            "coalesce", "no-coalesce", "socket", "socket-no-coalesce"
        }
        socket_row = report["results"]["socket"]
        assert socket_row["socket_p99_ms"] >= socket_row["socket_p50_ms"] > 0
        assert report["workload"]["socket_transport"] is True
    def test_canonical_json_is_stable_and_sorted(self, service_graph, hot):
        with QueryService(service_graph, seed=91) as service:
            result = service.submit(hot[0])
            text = canonical_result(result)
        assert text == canonical_result(result)
        import json

        payload = json.loads(text)
        assert list(payload) == sorted(payload)


def _two_region_graph():
    """A main BA component plus a disjoint half-normalized side community.

    The side community's weights are halved so streaming arrivals there get
    positive familiarity (headroom exists); every hot key the workload
    derives lands in the main component, so side mutations must retain all
    of them and main mutations must flush all of them.
    """
    from repro.graph.generators import barabasi_albert_graph
    from repro.graph.social_graph import SocialGraph
    from repro.graph.weights import apply_degree_normalized_weights

    main = apply_degree_normalized_weights(barabasi_albert_graph(120, 3, rng=17))
    side = apply_degree_normalized_weights(barabasi_albert_graph(30, 2, rng=23))
    graph = SocialGraph(name="two-region")
    for u, v in main.edges():
        graph.add_edge(u, v, main.weight(u, v), main.weight(v, u))
    for u, v in side.edges():
        graph.add_edge(
            u + 120, v + 120, side.weight(u, v) * 0.5, side.weight(v, u) * 0.5
        )
    return graph


class TestStreamingWorkload:
    """Edge arrivals interleaved with query waves (delta-scoped invalidation)."""

    def test_arrivals_are_a_pure_function_of_graph_round_and_seed(self):
        graph = _two_region_graph()
        side = [n for n in graph.nodes() if n >= 120]
        first = streaming_edge_arrivals(graph, 0, 3, 5, side)
        assert first == streaming_edge_arrivals(graph, 0, 3, 5, side)
        assert first != streaming_edge_arrivals(graph, 1, 3, 5, side)
        for u, v, w_uv, w_vu in first:
            assert u >= 120 and v >= 120 and not graph.has_edge(u, v)
            assert 0.0 <= w_uv <= 0.2 and 0.0 <= w_vu <= 0.2
            # applying the arrival must keep the receiving rows normalized
            assert graph.total_in_weight(v) + w_uv <= 1.0 + 1e-9
            assert graph.total_in_weight(u) + w_vu <= 1.0 + 1e-9

    def test_arrivals_need_two_candidates(self):
        graph = _two_region_graph()
        with pytest.raises(ServiceError):
            streaming_edge_arrivals(graph, 0, 1, 5, [0])

    def test_far_mutations_retain_every_hot_key(self):
        graph = _two_region_graph()
        side = [n for n in graph.nodes() if n >= 120]
        report = run_streaming_load(
            graph, hot_pairs=2, num_clients=4, rounds=3,
            mutations_per_round=1, seed=2019, pool_seed=77, mutation_nodes=side,
        )
        row = report["results"]["streaming"]
        assert report["bit_identical"] is True
        assert row["invalidations"] == 3
        assert row["flushed_keys"] == 0 and row["retained_keys"] > 0
        assert row["retained_hit_rate"] == 1.0
        assert row["pool_hit_rate"] > 0  # later waves reuse the retained streams

    def test_near_mutations_flush_every_hot_key_yet_stay_correct(self):
        graph = _two_region_graph()
        main = [n for n in graph.nodes() if n < 120]
        report = run_streaming_load(
            graph, hot_pairs=2, num_clients=4, rounds=3,
            mutations_per_round=1, seed=2019, pool_seed=77, mutation_nodes=main,
        )
        row = report["results"]["streaming"]
        # Retention never buys correctness: even at 0% the standalone
        # verification arm inside run_streaming_load must have passed.
        assert report["bit_identical"] is True
        assert row["retained_keys"] == 0 and row["flushed_keys"] > 0
        assert row["retained_hit_rate"] == 0.0

    def test_streaming_mutates_the_live_graph(self):
        graph = _two_region_graph()
        edges_before = graph.num_edges
        side = [n for n in graph.nodes() if n >= 120]
        run_streaming_load(
            graph, hot_pairs=1, num_clients=2, rounds=2,
            mutations_per_round=2, seed=2019, pool_seed=77,
            mutation_nodes=side, verify=False,
        )
        assert graph.num_edges == edges_before + 4
