"""Deterministic concurrency tests for :class:`repro.service.QueryService`.

The load-bearing properties:

* coalesced and independent execution return *bit-identical* results (the
  pool's determinism contract surfaced through the service);
* admission-control limits are honored (in-flight executions, per-query
  sample budgets) while coalesced joins are always admitted;
* the metrics counters reconcile exactly:
  ``requests == executed + coalesced + rejected``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.raf import estimate_pmax
from repro.diffusion.engine import create_engine
from repro.exceptions import (
    AlgorithmError,
    EngineError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceRejectedError,
)
from repro.pool.sample_pool import SamplePool
from repro.service import (
    EvaluateQuery,
    MaximizeQuery,
    PmaxQuery,
    QueryService,
    canonical_result,
    run_standalone,
)

POOL_SEED = 55


def _queries(pair):
    source, target = pair
    return [
        PmaxQuery(source, target, epsilon=0.3, confidence_n=100.0, max_samples=30_000),
        EvaluateQuery(source, target, invitation=frozenset(range(40)) | {target}),
        MaximizeQuery(source, target, budget=3, num_realizations=800),
    ]


class TestBitIdentity:
    def test_service_answers_match_standalone_calls(self, service_graph, hot_pair):
        """Every query kind, answered through a busy shared service, is
        byte-identical to the same query run standalone on a fresh pool."""
        with QueryService(service_graph, seed=POOL_SEED) as service:
            for query in _queries(hot_pair) * 2:  # repeats hit the warm cache
                observed = canonical_result(service.submit(query))
                expected = run_standalone(service_graph, query, POOL_SEED)
                assert observed == expected

    def test_arrival_order_is_irrelevant(self, service_graph, hot_pair):
        queries = _queries(hot_pair)
        with QueryService(service_graph, seed=POOL_SEED) as forward:
            first = [canonical_result(r) for r in forward.submit_many(queries)]
        with QueryService(service_graph, seed=POOL_SEED) as backward:
            second = [canonical_result(r) for r in backward.submit_many(queries[::-1])]
        assert first == second[::-1]

    def test_coalescing_off_is_identical(self, service_graph, hot_pair):
        queries = _queries(hot_pair) * 3
        with QueryService(service_graph, seed=POOL_SEED, coalesce=True) as on:
            coalesced = [canonical_result(r) for r in on.submit_many(queries)]
        with QueryService(service_graph, seed=POOL_SEED, coalesce=False) as off:
            independent = [canonical_result(r) for r in off.submit_many(queries)]
        assert coalesced == independent
        assert on.metrics().executed < off.metrics().executed

    def test_pmax_matches_direct_library_call(self, service_graph, hot_pair):
        source, target = hot_pair
        with QueryService(service_graph, seed=POOL_SEED) as service:
            served = service.estimate_pmax(
                source, target, epsilon=0.3, confidence_n=100.0, max_samples=30_000
            )
        pool = SamplePool(create_engine(service_graph, "python"), seed=POOL_SEED)
        direct = estimate_pmax(
            service_graph, source, target, epsilon=0.3, confidence_n=100.0,
            max_samples=30_000, pool=pool,
        )
        assert served == direct


class TestInFlightCoalescing:
    def test_concurrent_duplicates_coalesce_onto_one_execution(
        self, service_graph, hot_pair, gated_engine
    ):
        source, target = hot_pair
        query = EvaluateQuery(source, target, invitation=frozenset({1, 2, target}))
        with QueryService(service_graph, engine=gated_engine, seed=POOL_SEED) as service:
            results: dict[str, object] = {}
            leader = threading.Thread(target=lambda: results.update(a=service.submit(query)))
            leader.start()
            assert gated_engine.entered.wait(timeout=30.0)
            # The leader is now provably blocked inside its sampling call.
            follower = threading.Thread(target=lambda: results.update(b=service.submit(query)))
            follower.start()
            while service.metrics().requests < 2:  # the follower has not attached yet
                pass
            metrics = service.metrics()
            assert (metrics.executed, metrics.coalesced) == (1, 1)
            gated_engine.release.set()
            leader.join(timeout=30.0)
            follower.join(timeout=30.0)
            assert canonical_result(results["a"]) == canonical_result(results["b"])
            assert canonical_result(results["a"]) == run_standalone(
                service_graph, query, POOL_SEED
            )

    def test_followers_observe_the_leaders_error(self, unreachable_graph, gate_engine):
        query = MaximizeQuery("s", "t", budget=2, num_realizations=50)
        gated = gate_engine(unreachable_graph)
        with QueryService(unreachable_graph, engine=gated, seed=POOL_SEED) as service:
            errors: list[BaseException] = []

            def run():
                try:
                    service.submit(query)
                except BaseException as error:
                    errors.append(error)

            leader = threading.Thread(target=run)
            leader.start()
            assert gated.entered.wait(timeout=30.0)
            follower = threading.Thread(target=run)
            follower.start()
            while service.metrics().requests < 2:
                pass
            gated.release.set()
            leader.join(timeout=30.0)
            follower.join(timeout=30.0)
            assert len(errors) == 2
            assert all(isinstance(error, AlgorithmError) for error in errors)
            assert errors[0] is errors[1]  # one execution, one error object

    def test_batch_duplicates_coalesce_exactly(self, service_graph, hot_pair):
        queries = _queries(hot_pair)
        wave = [queries[0], queries[1], queries[0], queries[0], queries[2], queries[1]]
        with QueryService(service_graph, seed=POOL_SEED) as service:
            results = service.submit_many(wave)
            metrics = service.metrics()
            assert metrics.requests == len(wave)
            assert metrics.executed == 3  # distinct queries
            assert metrics.coalesced == 3  # duplicates
            assert canonical_result(results[0]) == canonical_result(results[2])
            assert canonical_result(results[0]) == canonical_result(results[3])
            assert canonical_result(results[1]) == canonical_result(results[5])


class TestAdmissionControl:
    def test_in_flight_limit_rejects_new_executions(
        self, service_graph, hot_pair, gated_engine
    ):
        source, target = hot_pair
        hot = EvaluateQuery(source, target, invitation=frozenset({1, 2, target}))
        other = EvaluateQuery(source, target, invitation=frozenset({3, 4, target}))
        with QueryService(
            service_graph, engine=gated_engine, seed=POOL_SEED, max_in_flight=1
        ) as service:
            holder = threading.Thread(target=lambda: service.submit(hot))
            holder.start()
            assert gated_engine.entered.wait(timeout=30.0)
            # A different query would need a second execution: refused.
            with pytest.raises(ServiceOverloadedError):
                service.submit(other)
            # A duplicate coalesces onto the in-flight execution: admitted.
            joined: list = []
            follower = threading.Thread(target=lambda: joined.append(service.submit(hot)))
            follower.start()
            while service.metrics().coalesced < 1:
                pass
            gated_engine.release.set()
            holder.join(timeout=30.0)
            follower.join(timeout=30.0)
            metrics = service.metrics()
            assert metrics.rejected == 1
            assert metrics.requests == metrics.executed + metrics.coalesced + metrics.rejected
            # The limit frees up once the execution finishes.
            assert service.submit(other) is not None

    def test_per_query_sample_budget(self, service_graph, hot_pair):
        source, target = hot_pair
        with QueryService(service_graph, seed=POOL_SEED, max_query_samples=500) as service:
            with pytest.raises(ServiceRejectedError):
                service.submit(EvaluateQuery(source, target, num_samples=501))
            with pytest.raises(ServiceRejectedError):
                service.submit(PmaxQuery(source, target, max_samples=100_000))
            with pytest.raises(ServiceRejectedError):
                service.submit(MaximizeQuery(source, target, budget=2, num_realizations=600))
            admitted = service.submit(
                EvaluateQuery(source, target, invitation={target}, num_samples=500)
            )
            assert admitted.num_samples == 500
            metrics = service.metrics()
            assert metrics.rejected == 3
            assert metrics.requests == metrics.executed + metrics.coalesced + metrics.rejected

    def test_unsupported_query_type_rejected(self, service_graph):
        with QueryService(service_graph, seed=POOL_SEED) as service:
            with pytest.raises(ServiceError):
                service.submit("not a query")

    def test_invalid_limits_rejected(self, service_graph):
        with pytest.raises(ValueError):
            QueryService(service_graph, max_in_flight=0)
        with pytest.raises(ValueError):
            QueryService(service_graph, max_query_samples=0)

    def test_foreign_engine_rejected(self, service_graph, unreachable_graph):
        foreign = create_engine(unreachable_graph, "python")
        with pytest.raises(EngineError):
            QueryService(service_graph, engine=foreign)


class TestMetrics:
    def test_counters_reconcile_and_rates_are_consistent(self, service_graph, hot_pair):
        queries = _queries(hot_pair)
        with QueryService(service_graph, seed=POOL_SEED) as service:
            service.submit_many(queries * 4)
            metrics = service.metrics()
            assert metrics.requests == metrics.executed + metrics.coalesced + metrics.rejected
            assert metrics.requests == len(queries) * 4
            assert metrics.coalesce_rate == metrics.coalesced / (
                metrics.executed + metrics.coalesced
            )
            assert 0.0 <= metrics.pool_hit_rate <= 1.0
            assert metrics.samples_served > 0
            assert metrics.latency_p50 > 0.0
            assert metrics.latency_p50 <= metrics.latency_p90 <= metrics.latency_p99

    def test_fresh_service_reports_zeroes(self, service_graph):
        with QueryService(service_graph, seed=POOL_SEED) as service:
            metrics = service.metrics()
            assert metrics.requests == 0
            assert metrics.coalesce_rate == 0.0
            assert metrics.pool_hit_rate == 0.0
            assert metrics.latency_p50 is None
            assert metrics.latency_p90 is None
            assert metrics.latency_p99 is None


class TestAsyncFrontend:
    def test_concurrent_awaits_coalesce(self, service_graph, hot_pair, gated_engine):
        source, target = hot_pair
        query = EvaluateQuery(source, target, invitation=frozenset({1, 2, target}))

        async def drive(service):
            first = asyncio.create_task(service.submit_async(query))
            second = asyncio.create_task(service.submit_async(query))
            # Wait until both submissions have registered (leader in flight,
            # follower attached), then release the gate.
            while service.metrics().requests < 2:
                await asyncio.sleep(0.001)
            metrics = service.metrics()
            assert (metrics.executed, metrics.coalesced) == (1, 1)
            gated_engine.release.set()
            return await asyncio.gather(first, second)

        with QueryService(service_graph, engine=gated_engine, seed=POOL_SEED) as service:
            first, second = asyncio.run(drive(service))
            assert canonical_result(first) == canonical_result(second)
            assert canonical_result(first) == run_standalone(service_graph, query, POOL_SEED)

    def test_async_answers_match_sync(self, service_graph, hot_pair):
        queries = _queries(hot_pair)

        async def drive(service):
            return await asyncio.gather(*(service.submit_async(q) for q in queries))

        with QueryService(service_graph, seed=POOL_SEED) as async_service:
            async_results = [canonical_result(r) for r in asyncio.run(drive(async_service))]
        with QueryService(service_graph, seed=POOL_SEED) as sync_service:
            sync_results = [canonical_result(sync_service.submit(q)) for q in queries]
        assert async_results == sync_results


class TestPercentiles:
    def test_nearest_rank_definition(self):
        from repro.service.query_service import _percentile

        hundred = [float(n) for n in range(1, 101)]
        assert _percentile(hundred, 0.50) == 50.0
        assert _percentile(hundred, 0.90) == 90.0
        assert _percentile(hundred, 0.99) == 99.0  # not the maximum
        assert _percentile([1.0, 2.0], 0.50) == 1.0
        assert _percentile([7.0], 0.99) == 7.0

    def test_empty_window_has_no_percentiles(self, service_graph):
        """Zero requests: percentiles are None (not 0.0, not IndexError),
        and the stats rendering makes the absence explicit as JSON null."""
        import json

        from repro.experiments.records import to_jsonable
        from repro.service.query_service import _percentile

        assert _percentile([], 0.50) is None
        with QueryService(service_graph, seed=POOL_SEED) as service:
            metrics = service.metrics()
        assert metrics.requests == 0
        assert metrics.latency_p50 is None
        assert metrics.latency_p90 is None
        assert metrics.latency_p99 is None
        rendered = json.loads(json.dumps(to_jsonable(metrics)))
        assert rendered["latency_p50"] is None  # explicit null on the wire

    def test_single_request_window_reports_that_sample_everywhere(
        self, service_graph, hot_pair
    ):
        source, target = hot_pair
        query = EvaluateQuery(source, target, num_samples=64)
        with QueryService(service_graph, seed=POOL_SEED) as service:
            service.submit(query)
            metrics = service.metrics()
        assert metrics.latency_p50 is not None
        assert metrics.latency_p50 == metrics.latency_p90 == metrics.latency_p99


class TestShutdownRace:
    def test_submission_racing_close_gets_typed_error(
        self, service_graph, hot_pair, gated_engine
    ):
        """A submission arriving while ``close()`` drains must fail fast with
        ``ServiceClosedError`` -- never hang on the torn-down executor.

        The race is constructed, not timed: the leader is gate-blocked inside
        the engine, ``close()`` runs on another thread (it marks the service
        closed immediately, then blocks waiting for the leader), and the
        racing submission is issued only once ``service.closed`` is observed.
        """
        source, target = hot_pair
        query = EvaluateQuery(source, target, num_samples=64)
        service = QueryService(service_graph, engine=gated_engine, seed=POOL_SEED)

        leader_result: dict = {}

        def leader():
            leader_result["value"] = canonical_result(service.submit(query))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert gated_engine.entered.wait(timeout=30.0)

        closer = threading.Thread(target=service.close)
        closer.start()
        deadline = time.monotonic() + 30.0
        while not service.closed and time.monotonic() < deadline:
            time.sleep(0.001)
        assert service.closed  # close() marks the flag before blocking

        with pytest.raises(ServiceClosedError):
            service.submit(EvaluateQuery(source, target, num_samples=32))

        gated_engine.release.set()
        leader_thread.join(timeout=30.0)
        closer.join(timeout=30.0)
        assert not leader_thread.is_alive() and not closer.is_alive()
        # The already-admitted leader finished its sampling and answered
        # byte-identically; the refused racer is counted as rejected.
        assert leader_result["value"] == run_standalone(service_graph, query, POOL_SEED)
        metrics = service.metrics()
        assert metrics.requests == metrics.executed + metrics.coalesced + metrics.rejected
        assert metrics.rejected == 1

    def test_close_is_idempotent_and_submissions_stay_refused(self, service_graph, hot_pair):
        source, target = hot_pair
        service = QueryService(service_graph, seed=POOL_SEED)
        service.close()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(EvaluateQuery(source, target, num_samples=32))

    def test_async_submission_after_close_fails_fast(self, service_graph, hot_pair):
        source, target = hot_pair
        service = QueryService(service_graph, seed=POOL_SEED)
        service.close()

        async def drive():
            await service.submit_async(EvaluateQuery(source, target, num_samples=32))

        with pytest.raises(ServiceClosedError):
            asyncio.run(drive())


class TestQueryValidation:
    def test_bad_parameters_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PmaxQuery(0, 1, epsilon=-0.1)
        with pytest.raises(ValueError):
            EvaluateQuery(0, 1, num_samples=0)
        with pytest.raises(ValueError):
            MaximizeQuery(0, 1, budget=0)

    def test_invitation_iterables_are_canonicalized(self):
        assert EvaluateQuery(0, 1, invitation=[3, 2, 3]) == EvaluateQuery(
            0, 1, invitation=frozenset({2, 3})
        )
