"""CLI tests for ``repro serve`` and ``repro bench-load``.

``serve`` is driven end to end through ``main()`` with a stdin substitute:
JSON-lines round-trips, per-line domain errors, and the malformed-request
paths that must exit non-zero with a stderr diagnostic.
"""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

GRAPH_ARGS = ["--dataset", "wiki", "--scale", "0.02"]

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_serve(*extra_args, stdout=subprocess.PIPE):
    """Spawn ``repro serve`` as a real subprocess (signal/pipe tests)."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "--seed", "7", "serve", *GRAPH_ARGS,
         *extra_args],
        stdin=subprocess.PIPE, stdout=stdout, stderr=subprocess.PIPE,
        env=env, cwd=REPO_ROOT, text=True,
    )


def _serve(monkeypatch, capsys, lines, extra_args=(), seed="7"):
    """Run ``repro serve`` over the given request lines; return (code, out, err)."""
    monkeypatch.setattr("sys.stdin", io.StringIO("".join(line + "\n" for line in lines)))
    code = main(["--seed", seed, "serve", *GRAPH_ARGS, *extra_args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _valid_requests():
    return [
        json.dumps({"op": "pmax", "source": 0, "target": 50, "epsilon": 0.3,
                    "confidence_n": 100.0, "max_samples": 20000}),
        json.dumps({"op": "evaluate", "source": 0, "target": 50,
                    "invitation": [1, 2, 3, 50], "num_samples": 300}),
        json.dumps({"op": "maximize", "source": 0, "target": 50,
                    "budget": 3, "num_realizations": 500}),
    ]


class TestServeRoundTrip:
    def test_answers_one_json_line_per_request(self, monkeypatch, capsys):
        code, out, err = _serve(monkeypatch, capsys, _valid_requests())
        assert code == 0
        replies = [json.loads(line) for line in out.strip().splitlines()]
        assert [reply["op"] for reply in replies] == ["pmax", "evaluate", "maximize"]
        assert all(reply["ok"] for reply in replies)
        assert replies[0]["result"]["num_samples"] > 0
        assert replies[1]["result"]["num_samples"] == 300
        assert len(replies[2]["result"]["invitation"]) <= 3

    def test_repeated_requests_get_identical_answers(self, monkeypatch, capsys):
        request = _valid_requests()[0]
        code, out, _ = _serve(monkeypatch, capsys, [request, request, request])
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 3
        assert len(set(lines)) == 1  # byte-identical reply lines

    def test_blank_lines_are_skipped(self, monkeypatch, capsys):
        code, out, _ = _serve(monkeypatch, capsys, ["", _valid_requests()[1], "   "])
        assert code == 0
        assert len(out.strip().splitlines()) == 1

    def test_stats_op_reports_reconciling_counters(self, monkeypatch, capsys):
        requests = _valid_requests()
        code, out, _ = _serve(
            monkeypatch, capsys, [*requests, requests[0], json.dumps({"op": "stats"})]
        )
        assert code == 0
        stats = json.loads(out.strip().splitlines()[-1])
        assert stats["ok"] and stats["op"] == "stats"
        counters = stats["result"]
        assert counters["requests"] == (
            counters["executed"] + counters["coalesced"] + counters["rejected"]
        )
        assert counters["requests"] == 4
        assert 0.0 <= counters["pool_hit_rate"] <= 1.0
        assert "coalesce_rate" in counters

    def test_domain_errors_are_reported_per_line_and_serving_continues(
        self, monkeypatch, capsys
    ):
        unknown_node = json.dumps({"op": "pmax", "source": 0, "target": 999_999})
        code, out, _ = _serve(monkeypatch, capsys, [unknown_node, _valid_requests()[1]])
        assert code == 0
        first, second = (json.loads(line) for line in out.strip().splitlines())
        assert first["ok"] is False and "999999" in first["error"]
        assert second["ok"] is True

    def test_admission_rejections_are_per_line_responses(self, monkeypatch, capsys):
        over_budget = json.dumps(
            {"op": "evaluate", "source": 0, "target": 50, "num_samples": 5000}
        )
        code, out, _ = _serve(
            monkeypatch, capsys, [over_budget, _valid_requests()[1]],
            extra_args=["--max-query-samples", "1000"],
        )
        assert code == 0
        first, second = (json.loads(line) for line in out.strip().splitlines())
        assert first["ok"] is False and "budget" in first["error"]
        assert second["ok"] is True


class TestServeMalformedRequests:
    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("not json", "invalid JSON"),
            ("[1, 2, 3]", "expected a JSON object"),
            ('{"source": 0, "target": 50}', "unknown op"),
            ('{"op": "frobnicate"}', "unknown op"),
            ('{"op": "pmax", "source": 0, "target": 50, "epsilon": -1.0}', "epsilon"),
            ('{"op": "pmax", "bogus_field": 1}', "bogus_field"),
        ],
    )
    def test_malformed_request_exits_nonzero_with_diagnostic(
        self, monkeypatch, capsys, line, fragment
    ):
        code, _, err = _serve(monkeypatch, capsys, [line])
        assert code == 1
        assert "malformed request on line 1" in err
        assert fragment in err

    def test_lines_before_the_malformed_one_are_served(self, monkeypatch, capsys):
        code, out, err = _serve(monkeypatch, capsys, [_valid_requests()[1], "not json"])
        assert code == 1
        assert json.loads(out.strip().splitlines()[0])["ok"] is True
        assert "line 2" in err


class TestServeWorkersParity:
    def test_workers_auto_matches_explicit_count(self, monkeypatch, capsys):
        """The pool's chunk streams are worker-count independent, so serve
        output is byte-identical for --workers auto, an explicit count, and
        the single-stream default."""
        outputs = []
        for extra in ([], ["--workers", "1"], ["--workers", "auto"]):
            code, out, _ = _serve(monkeypatch, capsys, _valid_requests(), extra_args=extra)
            assert code == 0
            outputs.append(out)
        assert outputs[0] == outputs[1] == outputs[2]


class TestServeLifecycle:
    """Regression tests for the serve loop's exits: a downstream reader
    closing stdout mid-stream (EPIPE) and Ctrl-C must both end the process
    cleanly -- no traceback, no half-written line, a stderr diagnostic."""

    def test_downstream_reader_closing_stdout_exits_clean(self):
        """Pipe serve through a reader that stops after one line (head -1):
        the BrokenPipeError must be caught, not crash the process."""
        requests = [json.dumps({"op": "evaluate", "source": 0, "target": 50,
                                "num_samples": 100})]
        # The remaining requests are distinct (never coalesced/cached), so
        # the writes keep coming long after the reader has gone away.
        requests += [
            json.dumps({"op": "pmax", "source": 0, "target": 50, "epsilon": 0.3,
                        "confidence_n": 100.0, "max_samples": 20_000 + n})
            for n in range(20)
        ]
        script = (
            f"set -o pipefail; {sys.executable} -m repro --seed 7 serve "
            + " ".join(GRAPH_ARGS) + " | head -1"
        )
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        completed = subprocess.run(
            ["bash", "-c", script], input="".join(line + "\n" for line in requests),
            capture_output=True, env=env, cwd=REPO_ROOT, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "Traceback" not in completed.stderr
        assert "stdout closed by the downstream reader" in completed.stderr
        # head got exactly the one complete line it asked for.
        lines = completed.stdout.splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["ok"] is True

    def test_sigint_drains_and_exits_130(self):
        # --max-in-flight 1 shrinks the pipelining window to one, so the
        # reply is drained (written) as soon as the request completes --
        # the test can then interrupt a provably idle, mid-session loop.
        proc = _spawn_serve("--max-in-flight", "1")
        try:
            proc.stdin.write(json.dumps(
                {"op": "evaluate", "source": 0, "target": 50, "num_samples": 100}
            ) + "\n")
            proc.stdin.flush()
            reply = proc.stdout.readline()  # the request was fully served
            assert json.loads(reply)["ok"] is True
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=120)
        finally:
            proc.kill()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
        assert "interrupted; drained in-flight requests" in stderr

    def test_listen_mode_serves_tcp_and_sigint_closes_cleanly(self):
        """End to end over a real socket: --listen binds an ephemeral port,
        answers a JSON-lines query, and Ctrl-C shuts down with the stats
        report instead of a traceback."""
        proc = _spawn_serve("--listen", "127.0.0.1:0", stdout=subprocess.DEVNULL)
        try:
            banner = proc.stderr.readline()
            assert "listening on" in banner, banner
            port = int(banner.split()[2].rsplit(":", 1)[1])
            with socket.create_connection(("127.0.0.1", port), timeout=60) as conn:
                conn.sendall((json.dumps(
                    {"op": "evaluate", "source": 0, "target": 50,
                     "num_samples": 100, "tenant": "acme", "id": 1}
                ) + "\n").encode("utf-8"))
                reply = json.loads(conn.makefile().readline())
            assert reply["ok"] is True and reply["id"] == 1
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=120)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "Traceback" not in stderr
        assert "server closed cleanly" in stderr
        assert "acme" in stderr  # the shutdown report names the tenant

    def test_tenancy_flags_require_listen(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        code = main(["serve", *GRAPH_ARGS, "--tenant-burst", "1000"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--tenant-burst requires --listen" in captured.err

    def test_listen_on_bound_port_exits_with_one_line_diagnostic(self):
        """Binding a port something else holds must produce a single stderr
        line and the dedicated exit code -- not an asyncio traceback."""
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            proc = _spawn_serve("--listen", f"127.0.0.1:{port}")
            try:
                _, stderr = proc.communicate(timeout=120)
            finally:
                proc.kill()
        assert proc.returncode == 2
        assert "Traceback" not in stderr
        lines = [line for line in stderr.splitlines() if line.strip()]
        assert len(lines) == 1, stderr
        assert "already in use" in lines[0] and str(port) in lines[0]


class TestServeFaultInjection:
    def test_fault_rate_flags_require_fault_seed(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        code = main(["serve", *GRAPH_ARGS, "--fault-kill-rate", "0.5"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--fault-kill-rate requires --fault-seed" in captured.err

    def test_faulted_serve_output_is_byte_identical(self, monkeypatch, capsys):
        """A chaos soak run (worker kills + slow chunks) answers every query
        byte-identically to the fault-free serve loop."""
        code, baseline, _ = _serve(monkeypatch, capsys, _valid_requests())
        assert code == 0
        code, faulted, _ = _serve(
            monkeypatch, capsys, _valid_requests(),
            extra_args=["--workers", "2", "--fault-seed", "3",
                        "--fault-kill-rate", "0.3", "--fault-slow-rate", "0.2"],
        )
        assert code == 0
        assert faulted == baseline


class TestBenchLoadCommand:
    def test_round_trip_writes_report(self, capsys, tmp_path):
        output = tmp_path / "bench" / "BENCH_service.json"
        code = main([
            "--seed", "7", "bench-load", "--dataset", "wiki", "--scale", "0.05",
            "--hot-pairs", "1", "--clients", "6", "--rounds", "2",
            "--output", str(output),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "coalesce speedup" in stdout
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["benchmark"] == "service_load"
        assert report["bit_identical"] is True
        assert report["results"]["coalesce"]["coalesce_speedup"] > 0

    def test_min_speedup_gate_failure_exits_nonzero(self, capsys):
        code = main([
            "--seed", "7", "bench-load", "--dataset", "wiki", "--scale", "0.05",
            "--hot-pairs", "1", "--clients", "4", "--rounds", "2",
            "--min-speedup", "1000",
        ])
        assert code == 1
        assert "below required" in capsys.readouterr().err

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench-load"])
        assert args.clients == 48
        assert args.rounds == 16
        assert args.hot_pairs == 2
        assert args.min_speedup is None
        serve_args = build_parser().parse_args(["serve"])
        assert serve_args.coalesce is True
        assert serve_args.max_in_flight is None
        assert build_parser().parse_args(["serve", "--no-coalesce"]).coalesce is False
