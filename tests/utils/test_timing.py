"""Tests for repro.utils.timing."""

from __future__ import annotations

import time

import pytest

from repro.utils.timing import Stopwatch, format_duration


class TestStopwatch:
    def test_context_manager_measures_time(self):
        with Stopwatch() as stopwatch:
            time.sleep(0.01)
        assert stopwatch.elapsed >= 0.005

    def test_not_running_after_context(self):
        with Stopwatch() as stopwatch:
            pass
        assert not stopwatch.running

    def test_running_property(self):
        stopwatch = Stopwatch()
        assert not stopwatch.running
        stopwatch.start()
        assert stopwatch.running
        stopwatch.stop()
        assert not stopwatch.running

    def test_double_start_rejected(self):
        stopwatch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            stopwatch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates_across_cycles(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        time.sleep(0.005)
        first = stopwatch.stop()
        stopwatch.start()
        time.sleep(0.005)
        second = stopwatch.stop()
        assert second > first

    def test_reset(self):
        stopwatch = Stopwatch().start()
        stopwatch.stop()
        stopwatch.reset()
        assert stopwatch.elapsed == 0.0
        assert not stopwatch.running

    def test_elapsed_while_running(self):
        stopwatch = Stopwatch().start()
        time.sleep(0.005)
        assert stopwatch.elapsed > 0.0
        stopwatch.stop()


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(0.0000042).endswith("us")

    def test_milliseconds(self):
        assert format_duration(0.0042) == "4.2ms"

    def test_seconds(self):
        assert format_duration(3.14159) == "3.14s"

    def test_minutes(self):
        assert format_duration(75.3) == "1m15.3s"

    def test_hours(self):
        assert format_duration(3_725.0) == "1h2m5s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)
