"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    require,
    require_in_closed_unit_interval,
    require_in_open_closed_unit_interval,
    require_non_negative,
    require_non_negative_int,
    require_positive,
    require_positive_int,
    require_probability,
)


class TestRequireNonNegativeInt:
    def test_accepts_zero_and_positive(self):
        assert require_non_negative_int(0, "count") == 0
        assert require_non_negative_int(7, "count") == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="count"):
            require_non_negative_int(-1, "count")

    def test_rejects_non_integers(self):
        with pytest.raises(TypeError):
            require_non_negative_int(1.5, "count")
        with pytest.raises(TypeError):
            require_non_negative_int(True, "count")


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(2.5, "x") == 2.5

    def test_accepts_integer(self):
        assert require_positive(3, "x") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            require_positive("1", "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive(True, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestRequirePositiveInt:
    def test_accepts_positive_int(self):
        assert require_positive_int(5, "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive_int(0, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_positive_int(2.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_int(True, "x")


class TestUnitIntervalChecks:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_closed_interval_accepts_bounds(self, value):
        assert require_in_closed_unit_interval(value, "x") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_closed_interval_rejects_outside(self, value):
        with pytest.raises(ValueError):
            require_in_closed_unit_interval(value, "x")

    def test_probability_alias(self):
        assert require_probability(0.3, "p") == 0.3

    def test_open_closed_rejects_zero(self):
        with pytest.raises(ValueError):
            require_in_open_closed_unit_interval(0.0, "alpha")

    def test_open_closed_accepts_one(self):
        assert require_in_open_closed_unit_interval(1.0, "alpha") == 1.0

    def test_open_closed_rejects_above_one(self):
        with pytest.raises(ValueError):
            require_in_open_closed_unit_interval(1.5, "alpha")

    def test_error_message_mentions_name(self):
        with pytest.raises(ValueError, match="alpha"):
            require_in_open_closed_unit_interval(2.0, "alpha")
