"""Tests for repro.utils.rng."""

from __future__ import annotations

import random

import pytest

from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_none_generators_are_independent(self):
        first = ensure_rng(None)
        second = ensure_rng(None)
        assert first is not second

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = ensure_rng(1)
        b = ensure_rng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_existing_generator_passthrough(self):
        generator = random.Random(7)
        assert ensure_rng(generator) is generator

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestDeriveRng:
    def test_same_seed_and_label_reproduce(self):
        a = derive_rng(99, "pmax")
        b = derive_rng(99, "pmax")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        a = derive_rng(99, "pmax")
        b = derive_rng(99, "sampling")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_derivation_advances_parent_state(self):
        parent = random.Random(5)
        before = parent.getstate()
        derive_rng(parent, "child")
        assert parent.getstate() != before

    def test_returns_new_generator(self):
        parent = random.Random(5)
        child = derive_rng(parent, "child")
        assert child is not parent


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(3, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)

    def test_spawned_streams_differ(self):
        streams = spawn_rngs(11, 3)
        sequences = [[stream.random() for _ in range(5)] for stream in streams]
        assert sequences[0] != sequences[1]
        assert sequences[1] != sequences[2]

    def test_reproducible_from_seed(self):
        first = [g.random() for g in spawn_rngs(17, 3)]
        second = [g.random() for g in spawn_rngs(17, 3)]
        assert first == second
