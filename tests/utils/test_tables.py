"""Tests for the table renderer (repro.utils.tables).

rich is an optional dependency: the fallback ASCII renderer must carry the
same content, so every content assertion here runs against whichever
renderer the environment resolves, and the ASCII layout is additionally
pinned directly (it is the one CI environments without rich will print).
"""

from __future__ import annotations

import pytest

from repro.utils.tables import _ascii_table, render_table


class TestRenderTable:
    def test_contains_title_headers_and_cells(self):
        text = render_table(
            ["tenant", "requests"], [["acme", 3], ["default", 11]], title="per-tenant"
        )
        assert "per-tenant" in text
        assert "tenant" in text and "requests" in text
        assert "acme" in text and "3" in text
        assert "default" in text and "11" in text

    def test_cells_are_stringified(self):
        text = render_table(["value"], [[None], [1.5], [True]])
        for rendered in ("None", "1.5", "True"):
            assert rendered in text

    def test_row_width_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="2 cells, expected 3"):
            render_table(["a", "b", "c"], [["x", "y"]])

    def test_empty_rows_render_headers_only(self):
        text = render_table(["a", "b"], [], title="empty")
        assert "empty" in text and "a" in text and "b" in text

    def test_no_trailing_newline(self):
        assert not render_table(["a"], [["x"]]).endswith("\n")


class TestAsciiFallback:
    def test_layout_is_aligned_and_stable(self):
        text = _ascii_table(
            "latencies", ["name", "p99 ms"], [["alpha", "1.25"], ["b", "202.54"]]
        )
        assert text.splitlines() == [
            "latencies",
            "name   p99 ms",
            "-----  ------",
            "alpha  1.25",
            "b      202.54",
        ]

    def test_rows_wider_than_headers_set_the_column_width(self):
        text = _ascii_table(None, ["x"], [["wide-cell"]])
        lines = text.splitlines()
        assert lines[1] == "-" * len("wide-cell")
