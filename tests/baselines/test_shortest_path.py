"""Tests for repro.baselines.shortest_path."""

from __future__ import annotations

import pytest

from repro.baselines.shortest_path import rank_by_shortest_paths, shortest_path_invitation
from repro.core.problem import ActiveFriendingProblem
from repro.graph.traversal import bfs_distances


@pytest.fixture
def diamond_problem(diamond_graph):
    return ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.1)


@pytest.fixture
def ba_problem(medium_ba_graph):
    import random

    from tests.conftest import find_test_pair

    source, target = find_test_pair(medium_ba_graph, random.Random(5), min_distance=3)
    return ActiveFriendingProblem(medium_ba_graph, source, target, alpha=0.1)


class TestRankByShortestPaths:
    def test_target_first(self, diamond_problem):
        assert rank_by_shortest_paths(diamond_problem)[0] == "t"

    def test_diamond_ranks_both_routes(self, diamond_problem):
        ranking = rank_by_shortest_paths(diamond_problem)
        assert set(ranking) == {"t", "x1", "x2"}

    def test_excludes_source_and_friends(self, ba_problem):
        ranking = rank_by_shortest_paths(ba_problem)
        assert ba_problem.source not in ranking
        assert not (set(ranking) & ba_problem.source_friends)

    def test_first_path_nodes_form_a_shortest_path(self, ba_problem):
        """The top-ranked nodes (beyond the target) lie on a shortest s-t path."""
        graph = ba_problem.graph
        distance = bfs_distances(graph, ba_problem.source)[ba_problem.target]
        ranking = rank_by_shortest_paths(ba_problem)
        # Internal nodes of the first shortest path: distance - 1 of them
        # (the path excludes s; its N_s member is excluded as a candidate).
        first_path_nodes = ranking[1 : distance - 1]
        node_distances = [bfs_distances(graph, ba_problem.source)[node] for node in first_path_nodes]
        assert node_distances == sorted(node_distances)

    def test_no_duplicates(self, ba_problem):
        ranking = rank_by_shortest_paths(ba_problem)
        assert len(ranking) == len(set(ranking))


class TestShortestPathInvitation:
    def test_algorithm_name(self, diamond_problem):
        assert shortest_path_invitation(diamond_problem, 2).algorithm == "SP"

    def test_contains_target(self, diamond_problem):
        assert "t" in shortest_path_invitation(diamond_problem, 1).invitation

    def test_size_capped_by_available_candidates(self, diamond_problem):
        result = shortest_path_invitation(diamond_problem, 50)
        assert result.invitation == frozenset({"t", "x1", "x2"})
        assert result.metadata["ranked_candidates"] == 3

    def test_budget_respected(self, ba_problem):
        assert shortest_path_invitation(ba_problem, 4).size <= 4

    def test_larger_budget_is_superset(self, ba_problem):
        small = shortest_path_invitation(ba_problem, 3).invitation
        large = shortest_path_invitation(ba_problem, 8).invitation
        assert small <= large

    def test_invalid_size(self, ba_problem):
        with pytest.raises(ValueError):
            shortest_path_invitation(ba_problem, -1)

    def test_disconnected_pair_yields_only_target(self):
        from repro.graph.social_graph import SocialGraph
        from repro.graph.weights import apply_degree_normalized_weights

        graph = apply_degree_normalized_weights(
            SocialGraph(edges=[("s", "a"), ("t", "x")])
        )
        problem = ActiveFriendingProblem(graph, "s", "t")
        result = shortest_path_invitation(problem, 5)
        assert result.invitation == frozenset({"t"})
