"""Tests for the random, PageRank and greedy marginal-gain baselines."""

from __future__ import annotations

import pytest

from repro.baselines.greedy_marginal import greedy_marginal_invitation
from repro.baselines.pagerank import pagerank_invitation, pagerank_scores, rank_by_pagerank
from repro.baselines.random_invite import random_invitation
from repro.core.problem import ActiveFriendingProblem
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.graph.generators import star_graph
from repro.graph.weights import apply_degree_normalized_weights


@pytest.fixture
def ba_problem(medium_ba_graph):
    return ActiveFriendingProblem(medium_ba_graph, 5, 180, alpha=0.1)


class TestRandomInvitation:
    def test_size_and_target(self, ba_problem):
        result = random_invitation(ba_problem, 10, rng=1)
        assert result.size == 10
        assert ba_problem.target in result.invitation
        assert result.algorithm == "Random"

    def test_candidates_only(self, ba_problem):
        result = random_invitation(ba_problem, 20, rng=2)
        assert result.invitation <= ba_problem.candidate_nodes()

    def test_reproducible(self, ba_problem):
        assert random_invitation(ba_problem, 10, rng=3).invitation == random_invitation(
            ba_problem, 10, rng=3
        ).invitation

    def test_budget_exceeding_candidates(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t")
        result = random_invitation(problem, 100, rng=4)
        assert result.invitation == frozenset({"x1", "x2", "t"})

    def test_without_target_promotion(self, ba_problem):
        result = random_invitation(ba_problem, 5, include_target=False, rng=5)
        assert result.size == 5

    def test_invalid_size(self, ba_problem):
        with pytest.raises(ValueError):
            random_invitation(ba_problem, 0)


class TestPagerank:
    def test_scores_sum_to_one(self, medium_ba_graph):
        scores = pagerank_scores(medium_ba_graph)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_star_centre_has_highest_score(self):
        graph = apply_degree_normalized_weights(star_graph(6))
        scores = pagerank_scores(graph)
        assert scores[0] == max(scores.values())

    def test_empty_graph(self):
        from repro.graph.social_graph import SocialGraph

        assert pagerank_scores(SocialGraph()) == {}

    def test_invalid_damping(self, medium_ba_graph):
        with pytest.raises(ValueError):
            pagerank_scores(medium_ba_graph, damping=1.0)

    def test_ranking_sorted_by_score(self, ba_problem):
        scores = pagerank_scores(ba_problem.graph)
        ranking = rank_by_pagerank(ba_problem)[1:]
        values = [scores[node] for node in ranking]
        assert values == sorted(values, reverse=True)

    def test_invitation_contains_target(self, ba_problem):
        result = pagerank_invitation(ba_problem, 5)
        assert ba_problem.target in result.invitation
        assert result.algorithm == "PageRank"
        assert result.size == 5

    def test_isolated_nodes_receive_teleport_mass(self):
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph(nodes=["iso"], edges=[("a", "b", 0.5, 0.5)])
        scores = pagerank_scores(graph)
        assert scores["iso"] > 0.0


class TestGreedyMarginal:
    def test_chain_selects_the_essential_node(self, chain_graph):
        problem = ActiveFriendingProblem(chain_graph, "s", "t", alpha=0.5)
        result = greedy_marginal_invitation(problem, 2, num_samples=300, rng=1)
        assert result.invitation == frozenset({"b", "t"})
        assert result.algorithm == "GreedyMC"

    def test_respects_budget(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        result = greedy_marginal_invitation(problem, 2, num_samples=200, rng=2)
        assert result.size == 2
        assert "t" in result.invitation

    def test_selection_history_recorded(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        result = greedy_marginal_invitation(problem, 3, num_samples=200, rng=3)
        assert len(result.metadata["selection_history"]) == 2

    def test_greedy_beats_random_on_diamond(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t", alpha=0.5)
        greedy = greedy_marginal_invitation(problem, 3, num_samples=300, rng=4)
        greedy_probability = estimate_acceptance_probability(
            diamond_graph, "s", "t", greedy.invitation, num_samples=2000, rng=5
        ).probability
        # With budget 3 the greedy reaches {x1, x2, t}, i.e. pmax = 0.5.
        assert greedy_probability == pytest.approx(0.5, abs=0.05)

    def test_invalid_budget(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t")
        with pytest.raises(ValueError):
            greedy_marginal_invitation(problem, 0)
