"""Tests for repro.baselines.high_degree."""

from __future__ import annotations

import pytest

from repro.baselines.high_degree import high_degree_invitation, rank_by_degree
from repro.core.problem import ActiveFriendingProblem


@pytest.fixture
def ba_problem(medium_ba_graph):
    return ActiveFriendingProblem(medium_ba_graph, 5, 180, alpha=0.1)


class TestRankByDegree:
    def test_target_promoted_to_front(self, ba_problem):
        ranking = rank_by_degree(ba_problem)
        assert ranking[0] == ba_problem.target

    def test_rest_sorted_by_decreasing_degree(self, ba_problem):
        graph = ba_problem.graph
        ranking = rank_by_degree(ba_problem)[1:]
        degrees = [graph.degree(node) for node in ranking]
        assert degrees == sorted(degrees, reverse=True)

    def test_excludes_source_and_its_friends(self, ba_problem):
        ranking = rank_by_degree(ba_problem)
        assert ba_problem.source not in ranking
        assert not (set(ranking) & ba_problem.source_friends)

    def test_without_target_promotion(self, ba_problem):
        ranking = rank_by_degree(ba_problem, include_target=False)
        graph = ba_problem.graph
        degrees = [graph.degree(node) for node in ranking]
        assert degrees == sorted(degrees, reverse=True)

    def test_deterministic(self, ba_problem):
        assert rank_by_degree(ba_problem) == rank_by_degree(ba_problem)


class TestHighDegreeInvitation:
    def test_requested_size(self, ba_problem):
        result = high_degree_invitation(ba_problem, 10)
        assert result.size == 10
        assert result.algorithm == "HD"

    def test_contains_target(self, ba_problem):
        assert ba_problem.target in high_degree_invitation(ba_problem, 3).invitation

    def test_larger_budget_is_superset(self, ba_problem):
        small = high_degree_invitation(ba_problem, 5).invitation
        large = high_degree_invitation(ba_problem, 15).invitation
        assert small <= large

    def test_budget_larger_than_candidates(self, diamond_graph):
        problem = ActiveFriendingProblem(diamond_graph, "s", "t")
        result = high_degree_invitation(problem, 100)
        assert result.invitation == frozenset({"x1", "x2", "t"})

    def test_invalid_size(self, ba_problem):
        with pytest.raises(ValueError):
            high_degree_invitation(ba_problem, 0)

    def test_metadata_records_request(self, ba_problem):
        assert high_degree_invitation(ba_problem, 7).metadata["requested_size"] == 7
